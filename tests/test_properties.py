"""Property-based tests (hypothesis) for the core invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import pair_sets, short_text, token_sets, vertex_ids

from repro.aggregation.dawid_skene import DawidSkeneAggregator
from repro.aggregation.majority import majority_vote
from repro.hit.comparisons import comparisons_for_entity_sizes
from repro.hit.generator import get_cluster_generator
from repro.hit.packing import (
    branch_and_bound_packing,
    column_generation_packing,
    first_fit_decreasing,
    size_lower_bound,
)
from repro.hit.pair_generation import PairHITGenerator
from repro.records.pairs import canonical_pair
from repro.records.preprocessing import normalize_text
from repro.similarity.edit_distance import levenshtein_distance, levenshtein_similarity
from repro.similarity.set_similarity import dice_similarity, jaccard_similarity, overlap_coefficient

# ------------------------------------------------------------ similarity
class TestSimilarityProperties:
    @given(token_sets, token_sets)
    def test_set_similarities_bounded_and_symmetric(self, a, b):
        for function in (jaccard_similarity, dice_similarity, overlap_coefficient):
            value = function(a, b)
            assert 0.0 <= value <= 1.0
            assert value == function(b, a)

    @given(token_sets)
    def test_self_similarity_is_one(self, tokens):
        assert jaccard_similarity(tokens, tokens) == 1.0
        assert dice_similarity(tokens, tokens) == 1.0

    @given(token_sets, token_sets)
    def test_jaccard_below_dice_below_overlap(self, a, b):
        # Standard ordering: J <= Dice and Dice <= Overlap for non-empty sets.
        if a and b:
            assert jaccard_similarity(a, b) <= dice_similarity(a, b) + 1e-12
            assert dice_similarity(a, b) <= overlap_coefficient(a, b) + 1e-12

    @given(short_text, short_text)
    def test_levenshtein_symmetry_and_bounds(self, a, b):
        distance = levenshtein_distance(a, b)
        assert distance == levenshtein_distance(b, a)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0

    @given(short_text, short_text, short_text)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)

    @given(short_text)
    def test_normalize_text_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once
        assert once == once.lower()


# ------------------------------------------------------------------ pairs
class TestPairProperties:
    @given(vertex_ids, vertex_ids)
    def test_canonical_pair_symmetric(self, a, b):
        if a == b:
            return
        assert canonical_pair(a, b) == canonical_pair(b, a)
        assert canonical_pair(a, b)[0] < canonical_pair(a, b)[1]

    @given(pair_sets())
    def test_pair_set_filter_is_subset(self, pairs):
        filtered = pairs.filter_by_likelihood(0.5)
        assert filtered.to_key_set() <= pairs.to_key_set()


# ---------------------------------------------------------------- packing
class TestPackingProperties:
    sizes_strategy = st.lists(st.integers(min_value=1, max_value=6), min_size=0, max_size=25)

    @given(sizes_strategy)
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_all_solvers_feasible_and_bounded(self, sizes):
        capacity = 6
        lower = size_lower_bound(sizes, capacity)
        for solver in (first_fit_decreasing, branch_and_bound_packing, column_generation_packing):
            solution = solver(sizes, capacity)
            assert solution.is_feasible()
            assert solution.bin_count >= lower
            # FFD guarantee: no solver should be worse than one bin per item.
            assert solution.bin_count <= max(len(sizes), lower)

    @given(sizes_strategy)
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_exact_solver_never_worse_than_ffd(self, sizes):
        capacity = 6
        exact = branch_and_bound_packing(sizes, capacity)
        ffd = first_fit_decreasing(sizes, capacity)
        assert exact.bin_count <= ffd.bin_count


# ----------------------------------------------------------- HIT covers
class TestHITGenerationProperties:
    @given(pair_sets(), st.sampled_from(["two-tiered", "bfs", "dfs", "random", "approximation"]))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_generator_produces_valid_bounded_cover(self, pairs, name):
        cluster_size = 5
        batch = get_cluster_generator(name, cluster_size=cluster_size).generate(pairs)
        assert batch.is_valid_cover()
        assert batch.max_hit_size() <= cluster_size

    @given(pair_sets(), st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_pair_generation_partitions_pairs(self, pairs, pairs_per_hit):
        batch = PairHITGenerator(pairs_per_hit=pairs_per_hit).generate(pairs)
        listed = [pair for hit in batch.hits for pair in hit.pairs]
        assert sorted(listed) == sorted(pairs.keys())
        assert all(hit.size <= pairs_per_hit for hit in batch.hits)

    @given(pair_sets())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_two_tiered_never_needs_more_hits_than_pairs(self, pairs):
        batch = get_cluster_generator("two-tiered", cluster_size=5).generate(pairs)
        assert batch.hit_count <= len(pairs)


# ------------------------------------------------------------ comparisons
class TestComparisonProperties:
    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=8))
    def test_equation_one_bounds(self, entity_sizes):
        n = sum(entity_sizes)
        comparisons = comparisons_for_entity_sizes(entity_sizes)
        assert (n - 1) <= comparisons <= n * (n - 1) // 2 or n == 1

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=8))
    def test_descending_order_minimises_comparisons(self, entity_sizes):
        # Equation 2: identifying the largest entities first needs the fewest
        # comparisons (and any order is a permutation between the extremes).
        ascending = comparisons_for_entity_sizes(sorted(entity_sizes))
        descending = comparisons_for_entity_sizes(sorted(entity_sizes, reverse=True))
        assert descending <= ascending


# ------------------------------------------------------------ aggregation
class TestAggregationProperties:
    votes_strategy = st.lists(
        st.tuples(
            st.sampled_from(["w1", "w2", "w3", "w4"]),
            st.tuples(st.sampled_from(["a", "b", "c"]), st.sampled_from(["x", "y", "z"])),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    )

    @given(votes_strategy)
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_posteriors_and_fractions_bounded(self, votes):
        fractions = majority_vote(votes)
        assert all(0.0 <= value <= 1.0 for value in fractions.values())
        posteriors = DawidSkeneAggregator(max_iterations=20).aggregate(votes)
        assert set(posteriors) == set(fractions)
        assert all(0.0 <= value <= 1.0 for value in posteriors.values())
