"""Tests for the from-scratch classifiers and the SVM-based ER baseline."""

import numpy as np
import pytest

from repro.learning.classifier_er import LearningBasedER
from repro.learning.logistic import LogisticRegression
from repro.learning.svm import LinearSVM
from repro.learning.training import TrainingSet, build_training_set, sample_training_pairs
from repro.similarity.feature_vectors import FeatureExtractor
from repro.simjoin.likelihood import SimJoinLikelihood


def linearly_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 2))
    labels = (features[:, 0] + features[:, 1] > 0).astype(int)
    return features, labels


class TestLinearSVM:
    def test_fits_linearly_separable_data(self):
        features, labels = linearly_separable()
        model = LinearSVM(iterations=5000, seed=1).fit(features, labels)
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.95

    def test_decision_function_ranks_by_margin(self):
        features, labels = linearly_separable()
        model = LinearSVM(iterations=5000, seed=1).fit(features, labels)
        scores = model.decision_function(np.array([[3.0, 3.0], [-3.0, -3.0]]))
        assert scores[0] > scores[1]

    def test_single_class_rejected(self):
        features = np.ones((10, 2))
        labels = np.ones(10)
        with pytest.raises(ValueError):
            LinearSVM().fit(features, labels)

    def test_unfitted_scoring_rejected(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((3, 2)), np.zeros(4))

    def test_probability_squash_in_unit_interval(self):
        features, labels = linearly_separable()
        model = LinearSVM(iterations=2000, seed=2).fit(features, labels)
        probabilities = model.score_probability(features)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(regularization=0)
        with pytest.raises(ValueError):
            LinearSVM(iterations=0)


class TestLogisticRegression:
    def test_fits_linearly_separable_data(self):
        features, labels = linearly_separable(seed=3)
        model = LogisticRegression(iterations=500).fit(features, labels)
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.95

    def test_probabilities_in_unit_interval(self):
        features, labels = linearly_separable(seed=4)
        model = LogisticRegression(iterations=200).fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all((probabilities > 0) & (probabilities < 1))

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((5, 2)), np.zeros(5))

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((1, 2)))


class TestTrainingSet:
    def test_sample_respects_size_and_labels(self, small_restaurant):
        candidates = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.1)
        labelled = sample_training_pairs(candidates, small_restaurant.ground_truth, 50, seed=1)
        assert len(labelled) == 50
        assert any(label for _key, label in labelled)

    def test_sample_empty_candidates(self):
        from repro.records.pairs import PairSet

        assert sample_training_pairs(PairSet(), frozenset(), 10) == []

    def test_build_training_set_features_match_labels(self, small_restaurant):
        candidates = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.1)
        extractor = FeatureExtractor.for_attributes(small_restaurant.store.attribute_names())
        training = build_training_set(
            small_restaurant.store,
            candidates,
            small_restaurant.ground_truth,
            extractor,
            sample_size=60,
            seed=2,
        )
        assert training.features.shape[0] == training.size
        assert training.has_both_classes()

    def test_balancing_increases_minority_share(self, small_restaurant):
        candidates = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.1)
        extractor = FeatureExtractor.for_attributes(["name"])
        unbalanced = build_training_set(
            small_restaurant.store, candidates, small_restaurant.ground_truth,
            extractor, sample_size=80, seed=3, balance=False,
        )
        balanced = build_training_set(
            small_restaurant.store, candidates, small_restaurant.ground_truth,
            extractor, sample_size=80, seed=3, balance=True,
        )
        assert balanced.positive_count >= unbalanced.positive_count

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TrainingSet(pair_keys=[("a", "b")], features=np.zeros((2, 1)), labels=np.zeros(2))


class TestLearningBasedER:
    def test_ranks_true_matches_high(self, small_restaurant):
        candidates = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.1)
        extractor = FeatureExtractor.for_attributes(small_restaurant.store.attribute_names())
        learner = LearningBasedER(extractor=extractor, training_size=100, repetitions=2, seed=1)
        ranked = learner.rank_pairs(small_restaurant.store, candidates, small_restaurant.ground_truth)
        assert len(ranked) == len(candidates)
        top = {key for key, _score in ranked[:30]}
        hits = len(top & set(small_restaurant.ground_truth))
        assert hits >= 10  # most of the 20 duplicates rank near the top

    def test_scores_sorted_descending(self, small_restaurant):
        candidates = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.2)
        extractor = FeatureExtractor.for_attributes(["name"])
        learner = LearningBasedER(extractor=extractor, training_size=60, repetitions=1, seed=0)
        ranked = learner.rank_pairs(small_restaurant.store, candidates, small_restaurant.ground_truth)
        scores = [score for _key, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_falls_back_to_likelihood_without_positives(self, small_restaurant):
        candidates = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.2)
        extractor = FeatureExtractor.for_attributes(["name"])
        learner = LearningBasedER(extractor=extractor, training_size=50, repetitions=1)
        ranked = learner.rank_pairs(small_restaurant.store, candidates, frozenset())
        assert len(ranked) == len(candidates)

    def test_empty_candidates(self, small_restaurant):
        from repro.records.pairs import PairSet

        extractor = FeatureExtractor.for_attributes(["name"])
        learner = LearningBasedER(extractor=extractor)
        assert learner.rank_pairs(small_restaurant.store, PairSet(), frozenset()) == []
