"""Tests for the streaming incremental entity-resolution subsystem.

The central contract: a :class:`StreamingResolver` fed the records of a
dataset in *any* arrival order, in *any* batch sizes, ends in exactly the
state a one-shot ``HybridWorkflow.resolve`` (with per-pair votes) produces —
same candidate pairs and likelihoods, same votes per pair, same posteriors,
same match set, same HIT pair coverage.  On top of that, the incremental
machinery must actually be incremental: clean components keep their cached
posteriors and votes across unrelated batches.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings

from strategies import arrival_batch_sizes, order_seeds

from repro.core.config import WorkflowConfig
from repro.core.workflow import HybridWorkflow
from repro.crowd.platform import SimulatedCrowdPlatform
from repro.datasets.restaurant import RestaurantGenerator
from repro.hit.base import HITBatch, PairBasedHIT
from repro.records.record import Record, RecordError
from repro.simjoin.likelihood import SimJoinLikelihood
from repro.simjoin.vectorized import HAVE_SCIPY
from repro.streaming.incremental_join import IncrementalSimJoin
from repro.streaming.session import StreamingResolver, resolve_stream


def make_dataset(record_count=90, duplicate_pairs=15, seed=11):
    return RestaurantGenerator(
        record_count=record_count, duplicate_pairs=duplicate_pairs, seed=seed
    ).generate()


def shuffled_ids(dataset, seed):
    ids = dataset.store.record_ids
    random.Random(seed).shuffle(ids)
    return ids


# --------------------------------------------------------------- join layer
class TestIncrementalSimJoin:
    JOIN_BACKENDS = ("prefix",) + (("vectorized",) if HAVE_SCIPY else ())

    @pytest.mark.parametrize("backend", JOIN_BACKENDS)
    @pytest.mark.parametrize("threshold", (0.0, 0.3, 0.6))
    def test_delta_union_equals_full_join(self, backend, threshold):
        dataset = make_dataset(seed=5)
        records = list(dataset.store)
        join = IncrementalSimJoin(threshold=threshold, backend=backend)
        accumulated = {}
        for start in range(0, len(records), 13):
            delta = join.add_batch(records[start : start + 13])
            for pair in delta:
                assert pair.key not in accumulated  # each pair reported once
                accumulated[pair.key] = pair.likelihood
        full = SimJoinLikelihood(backend=backend).estimate(
            dataset.store, min_likelihood=threshold
        )
        assert set(accumulated) == set(full.keys())
        for pair in full:
            assert accumulated[pair.key] == pair.likelihood  # bit-identical

    def test_cross_source_restriction(self):
        records = [
            Record("a1", {"t": "ipad mini white"}, source="abt"),
            Record("b1", {"t": "ipad mini white"}, source="buy"),
            Record("a2", {"t": "ipad mini white"}, source="abt"),
        ]
        join = IncrementalSimJoin(threshold=0.5, cross_sources=("abt", "buy"))
        first = join.add_batch(records[:1])
        assert len(first) == 0
        second = join.add_batch(records[1:])
        # a1-b1 and a2-b1 cross sources; a1-a2 does not.
        assert sorted(pair.key for pair in second) == [("a1", "b1"), ("a2", "b1")]

    def test_empty_token_records_join_across_batches(self):
        join = IncrementalSimJoin(threshold=0.4)
        join.add_batch([Record("e1", {"t": ""}), Record("x", {"t": "ipad"})])
        delta = join.add_batch([Record("e2", {"t": ""})])
        assert [pair.key for pair in delta] == [("e1", "e2")]
        assert delta.get("e1", "e2").likelihood == 1.0

    def test_duplicate_ids_rejected(self):
        join = IncrementalSimJoin(threshold=0.5)
        join.add_batch([Record("r1", {"t": "a"})])
        with pytest.raises(RecordError):
            join.add_batch([Record("r1", {"t": "b"})])
        with pytest.raises(RecordError):
            join.add_batch([Record("r2", {"t": "a"}), Record("r2", {"t": "b"})])


# ------------------------------------------------------- per-pair vote mode
class TestPerPairVoteMode:
    def _pair_batch(self, groups):
        pairs = {key for group in groups for key in group}
        return HITBatch(
            hit_type="pair",
            hits=[
                PairBasedHIT(hit_id=f"h{i}", pairs=tuple(group))
                for i, group in enumerate(groups)
            ],
            candidate_pairs=pairs,
        )

    def test_votes_independent_of_grouping(self):
        keys = [("r1", "r2"), ("r3", "r4"), ("r5", "r6"), ("r7", "r8")]
        truth = [("r1", "r2"), ("r5", "r6")]
        platform_a = SimulatedCrowdPlatform(seed=3, vote_mode="per-pair")
        platform_b = SimulatedCrowdPlatform(seed=3, vote_mode="per-pair")
        one_hit = platform_a.publish(self._pair_batch([keys]), truth)
        # Same pairs split across three HITs published as two batches.
        split_1 = platform_b.publish(self._pair_batch([keys[:2]]), truth)
        split_2 = platform_b.publish(self._pair_batch([keys[2:3], keys[3:]]), truth)
        assert sorted(one_hit.votes) == sorted(split_1.votes + split_2.votes)

    def test_duplicate_coverage_votes_once(self):
        key = ("r1", "r2")
        platform = SimulatedCrowdPlatform(seed=0, vote_mode="per-pair")
        overlapping = self._pair_batch([[key], [key]])
        run = platform.publish(overlapping, [])
        assert len(run.votes) == platform.assignments_per_hit
        # Assignments are still paid per HIT even though the pair votes once.
        assert run.assignment_count == 2 * platform.assignments_per_hit

    def test_round_salt_changes_votes(self):
        key = ("r1", "r2")
        platform = SimulatedCrowdPlatform(seed=1, vote_mode="per-pair")
        round_0 = platform.pair_votes(key, True, round_index=0)
        round_0_again = platform.pair_votes(key, True, round_index=0)
        round_1 = platform.pair_votes(key, True, round_index=1)
        assert round_0 == round_0_again
        assert [v[0] for v in round_0] != [v[0] for v in round_1]  # different workers

    def test_invalid_vote_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCrowdPlatform(vote_mode="telepathy")
        with pytest.raises(ValueError):
            WorkflowConfig(vote_mode="telepathy")


# ------------------------------------------------- streaming == batch runs
EQUIVALENCE_CONFIGS = [
    pytest.param(
        {"aggregation": "majority", "streaming_aggregation_scope": "component"},
        id="majority-component",
    ),
    pytest.param(
        {"aggregation": "dawid-skene", "streaming_aggregation_scope": "global"},
        id="dawid-skene-global",
    ),
]


class TestStreamingEquivalence:
    @pytest.mark.parametrize("overrides", EQUIVALENCE_CONFIGS)
    @pytest.mark.parametrize("order_seed", (0, 1, 2))
    def test_randomized_arrival_orders_match_one_shot(self, overrides, order_seed):
        dataset = make_dataset()
        config = WorkflowConfig(
            likelihood_threshold=0.35, vote_mode="per-pair", **overrides
        )
        workflow = HybridWorkflow(config)
        one_shot = workflow.resolve(dataset)
        batch_size = random.Random(order_seed).choice([7, 16, 33])
        stream = resolve_stream(
            dataset,
            config=config,
            batch_size=batch_size,
            arrival_order=shuffled_ids(dataset, order_seed),
        )
        assert set(stream.matches) == set(one_shot.matches)
        assert stream.matches == one_shot.matches  # identical ranking of matches
        assert stream.posteriors == one_shot.posteriors
        assert stream.likelihoods == one_shot.likelihoods
        assert stream.ranked_pairs == one_shot.ranked_pairs
        assert stream.recall_ceiling == one_shot.recall_ceiling

    def test_hit_pair_coverage_matches_one_shot(self):
        dataset = make_dataset()
        config = WorkflowConfig(likelihood_threshold=0.35, vote_mode="per-pair")
        workflow = HybridWorkflow(config)
        candidates = workflow.machine_candidates(dataset)
        one_shot_covered = workflow.generate_hits(candidates).covered_pairs()

        resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
        resolver.add_truth(dataset.ground_truth)
        records = list(dataset.store)
        for start in range(0, len(records), 11):
            resolver.add_batch(records[start : start + 11])
        assert resolver.covered_pairs() == one_shot_covered == set(candidates.keys())

    def test_pair_hits_equivalence(self):
        dataset = make_dataset(seed=21)
        config = WorkflowConfig(
            likelihood_threshold=0.35,
            hit_type="pair",
            vote_mode="per-pair",
            aggregation="majority",
        )
        one_shot = HybridWorkflow(config).resolve(dataset)
        stream = resolve_stream(dataset, config=config, batch_size=19)
        assert set(stream.matches) == set(one_shot.matches)
        assert stream.posteriors == one_shot.posteriors


# ----------------------------------------------------- incremental behaviour
class TestIncrementalBehaviour:
    def _two_island_records(self):
        island_a = [
            Record("a1", {"t": "golden gate grill san francisco"}),
            Record("a2", {"t": "golden gate grill san francisco"}),
        ]
        island_b = [
            Record("b1", {"t": "brooklyn bagel company new york"}),
            Record("b2", {"t": "brooklyn bagel company new york"}),
        ]
        return island_a, island_b

    def test_clean_component_state_preserved(self):
        island_a, island_b = self._two_island_records()
        config = WorkflowConfig(likelihood_threshold=0.5, vote_mode="per-pair")
        resolver = StreamingResolver(config=config)
        resolver.add_truth([("a1", "a2"), ("b1", "b2")])
        first = resolver.add_batch(island_a)
        votes_before = resolver.votes_for("a1", "a2")
        posterior_before = first.posteriors[("a1", "a2")]
        assert votes_before

        second = resolver.add_batch(island_b)
        # Island A was untouched by the batch: votes and posterior carried
        # over bit-for-bit, and the delta reports the preservation.
        assert resolver.votes_for("a1", "a2") == votes_before
        assert second.posteriors[("a1", "a2")] == posterior_before
        assert second.delta.preserved_posterior_pairs == 1
        assert second.delta.reused_vote_pairs == 0
        assert ("b1", "b2") in second.posteriors

    def test_recrowd_policy_never_reuses_votes(self):
        config = WorkflowConfig(likelihood_threshold=0.3, vote_mode="per-pair")
        resolver = StreamingResolver(config=config)
        base = [
            Record("r1", {"t": "alpha beta gamma delta"}),
            Record("r2", {"t": "alpha beta gamma delta"}),
        ]
        resolver.add_batch(base)
        votes_before = resolver.votes_for("r1", "r2")
        # A new record joins the same component: the component is dirty and
        # its HITs are regenerated, but the r1-r2 votes are reused.
        snap = resolver.add_batch([Record("r3", {"t": "alpha beta gamma epsilon"})])
        assert resolver.votes_for("r1", "r2") == votes_before
        assert snap.delta.reused_vote_pairs >= 1
        assert snap.delta.regenerated_hits >= 1

    def test_recrowd_policy_dirty_draws_fresh_votes(self):
        config = WorkflowConfig(
            likelihood_threshold=0.3, vote_mode="per-pair", recrowd_policy="dirty"
        )
        resolver = StreamingResolver(config=config)
        base = [
            Record("r1", {"t": "alpha beta gamma delta"}),
            Record("r2", {"t": "alpha beta gamma delta"}),
        ]
        resolver.add_batch(base)
        votes_before = resolver.votes_for("r1", "r2")
        resolver.add_batch([Record("r3", {"t": "alpha beta gamma epsilon"})])
        votes_after = resolver.votes_for("r1", "r2")
        # Fresh round: different workers were asked (round salt differs).
        assert votes_after != votes_before
        assert resolver._vote_rounds[("r1", "r2")] == 2

    def test_sequential_platform_rejected(self):
        platform = SimulatedCrowdPlatform(vote_mode="sequential")
        with pytest.raises(ValueError):
            StreamingResolver(platform=platform)

    def test_snapshot_before_any_batch_is_empty(self):
        resolver = StreamingResolver()
        snap = resolver.snapshot()
        assert snap.matches == []
        assert snap.candidate_count == 0
        assert snap.hit_count == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkflowConfig(recrowd_policy="sometimes")
        with pytest.raises(ValueError):
            WorkflowConfig(streaming_aggregation_scope="galaxy")
        with pytest.raises(ValueError):
            WorkflowConfig(stream_batch_size=0)

    def test_resolve_stream_rejects_partial_order(self):
        dataset = make_dataset(record_count=20, duplicate_pairs=3)
        with pytest.raises(ValueError):
            resolve_stream(dataset, arrival_order=dataset.store.record_ids[:-1])


# ------------------------------------------------- bounded-staleness (epsilon)
class TestBoundedStalenessAggregation:
    def _growing_component_batches(self):
        base = [
            Record("r1", {"t": "alpha beta gamma delta"}),
            Record("r2", {"t": "alpha beta gamma delta"}),
        ]
        growth = [Record("r3", {"t": "alpha beta gamma epsilon"})]
        return base, growth

    def test_epsilon_zero_always_reaggregates(self):
        base, growth = self._growing_component_batches()
        config = WorkflowConfig(likelihood_threshold=0.3, vote_mode="per-pair")
        resolver = StreamingResolver(config=config)
        resolver.add_batch(base)
        snap = resolver.add_batch(growth)
        assert snap.delta.stale_skipped_components == 0

    def test_large_epsilon_skips_low_gain_components(self):
        # Under recrowd_policy="never" the second batch adds votes only for
        # the two *new* pairs (3 votes each = 6 fresh votes in the dirty
        # component); an epsilon above that must skip the re-aggregation
        # and keep the cached posteriors bit-for-bit.
        base, growth = self._growing_component_batches()
        config = WorkflowConfig(likelihood_threshold=0.3, vote_mode="per-pair")
        resolver = StreamingResolver(config=config)
        first = resolver.add_batch(base)
        posterior_before = first.posteriors[("r1", "r2")]
        config.staleness_epsilon = 1000  # raise the bound mid-session
        snap = resolver.add_batch(growth)
        assert snap.delta.stale_skipped_components == 1
        assert snap.posteriors[("r1", "r2")] == posterior_before
        # The freshly voted pairs were *not* folded in — that's the
        # staleness trade: votes are ledgered but the posterior is deferred.
        assert ("r1", "r3") not in snap.posteriors
        assert resolver.votes_for("r1", "r3")

    def test_pending_votes_accumulate_until_the_bound_is_crossed(self):
        """Deferred components re-aggregate once enough evidence piles up:
        staleness is bounded by epsilon votes, not indefinite."""
        base, growth = self._growing_component_batches()
        config = WorkflowConfig(likelihood_threshold=0.3, vote_mode="per-pair")
        resolver = StreamingResolver(config=config)
        resolver.add_batch(base)
        # Each new pair gains 3 votes; one new record adds 2 pairs = 6.
        config.staleness_epsilon = 8
        deferred = resolver.add_batch(growth)
        assert deferred.delta.stale_skipped_components == 1
        assert ("r1", "r3") not in deferred.posteriors
        # Another arrival: the component's pending gain (6 + 9) crosses the
        # bound, so everything deferred is folded in now.
        caught_up = resolver.add_batch(
            [Record("r4", {"t": "alpha beta gamma zeta"})]
        )
        assert caught_up.delta.stale_skipped_components == 0
        assert ("r1", "r3") in caught_up.posteriors
        assert ("r1", "r4") in caught_up.posteriors

    def test_flush_settles_deferred_components(self):
        """After flush(), an epsilon session matches the exact session."""
        dataset = make_dataset(record_count=60, duplicate_pairs=10, seed=13)
        exact_config = WorkflowConfig(
            likelihood_threshold=0.35, vote_mode="per-pair", aggregation="majority"
        )
        exact = resolve_stream(dataset, config=exact_config, batch_size=17)

        config = WorkflowConfig(
            likelihood_threshold=0.35,
            vote_mode="per-pair",
            aggregation="majority",
            staleness_epsilon=50,
        )
        resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
        resolver.add_truth(dataset.ground_truth)
        records = list(dataset.store)
        for start in range(0, len(records), 17):
            lazy = resolver.add_batch(records[start : start + 17])
        assert lazy.posteriors != exact.posteriors  # staleness was real
        settled = resolver.flush()
        assert settled.posteriors == exact.posteriors
        assert set(settled.matches) == set(exact.matches)
        # Idempotent: nothing pending after a flush.
        assert resolver.flush().posteriors == exact.posteriors

    def test_small_epsilon_equals_exact_aggregation(self):
        """With majority aggregation, skipping zero-gain components changes
        nothing: epsilon=1 must reproduce the epsilon=0 session exactly."""
        dataset = make_dataset(record_count=60, duplicate_pairs=10, seed=13)
        results = {}
        for epsilon in (0, 1):
            config = WorkflowConfig(
                likelihood_threshold=0.35,
                vote_mode="per-pair",
                aggregation="majority",
                staleness_epsilon=epsilon,
            )
            results[epsilon] = resolve_stream(dataset, config=config, batch_size=17)
        assert results[1].posteriors == results[0].posteriors
        assert set(results[1].matches) == set(results[0].matches)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            WorkflowConfig(staleness_epsilon=-1)
        with pytest.raises(ValueError):
            WorkflowConfig(join_workers=-2)


# -------------------------------------------------------- property (random)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(order_seed=order_seeds, batch_size=arrival_batch_sizes)
def test_property_streaming_equals_batch(order_seed, batch_size):
    """Any arrival order / batch size reproduces the one-shot resolution."""
    dataset = make_dataset(record_count=60, duplicate_pairs=10, seed=13)
    config = WorkflowConfig(
        likelihood_threshold=0.35, vote_mode="per-pair", aggregation="majority"
    )
    one_shot = HybridWorkflow(config).resolve(dataset)
    stream = resolve_stream(
        dataset,
        config=config,
        batch_size=batch_size,
        arrival_order=shuffled_ids(dataset, order_seed),
    )
    assert set(stream.matches) == set(one_shot.matches)
    assert stream.posteriors == one_shot.posteriors
    assert stream.likelihoods == one_shot.likelihoods
