"""Unit tests for the record model, preprocessing, tokenisation and pairs."""

import pytest

from repro.records.pairs import PairSet, RecordPair, canonical_pair
from repro.records.preprocessing import normalize_record, normalize_text, strip_price_symbols
from repro.records.record import Record, RecordError, RecordStore
from repro.records.tokenize import (
    QGramTokenizer,
    WhitespaceTokenizer,
    WordTokenizer,
    record_token_list,
    record_token_set,
)


# ---------------------------------------------------------------- Record
class TestRecord:
    def test_attributes_are_copied_and_frozen(self):
        attributes = {"name": "oceana"}
        record = Record("r1", attributes)
        attributes["name"] = "changed"
        assert record.get("name") == "oceana"

    def test_empty_id_rejected(self):
        with pytest.raises(RecordError):
            Record("", {"name": "x"})

    def test_equality_and_hash_by_id(self):
        a = Record("r1", {"name": "a"})
        b = Record("r1", {"name": "b"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != Record("r2", {"name": "a"})

    def test_get_with_default(self):
        record = Record("r1", {"name": "x"})
        assert record.get("missing", "fallback") == "fallback"

    def test_text_concatenates_selected_attributes(self):
        record = Record("r1", {"name": "oceana", "city": "new york", "type": "seafood"})
        assert record.text(["name", "city"]) == "oceana new york"
        assert record.text() == "oceana new york seafood"

    def test_text_skips_empty_values(self):
        record = Record("r1", {"name": "oceana", "city": ""})
        assert record.text() == "oceana"

    def test_with_attributes_returns_modified_copy(self):
        record = Record("r1", {"name": "a", "city": "x"}, source="abt")
        updated = record.with_attributes(name="b")
        assert updated.get("name") == "b"
        assert updated.get("city") == "x"
        assert updated.source == "abt"
        assert record.get("name") == "a"

    def test_as_dict_includes_id_and_source(self):
        record = Record("r1", {"name": "a"}, source="buy")
        payload = record.as_dict()
        assert payload["record_id"] == "r1"
        assert payload["source"] == "buy"


# ------------------------------------------------------------ RecordStore
class TestRecordStore:
    def test_add_and_lookup(self):
        store = RecordStore()
        store.add(Record("r1", {"name": "a"}))
        assert "r1" in store
        assert store.get("r1").get("name") == "a"
        assert len(store) == 1

    def test_duplicate_id_rejected(self):
        store = RecordStore()
        store.add(Record("r1", {"name": "a"}))
        with pytest.raises(RecordError):
            store.add(Record("r1", {"name": "b"}))

    def test_from_rows_uses_id_attribute(self):
        store = RecordStore.from_rows(
            [{"record_id": "x", "name": "a"}, {"record_id": "y", "name": "b"}]
        )
        assert store.record_ids == ["x", "y"]
        assert "record_id" not in store.get("x").attributes

    def test_from_rows_generates_ids_when_missing(self):
        store = RecordStore.from_rows([{"name": "a"}, {"name": "b"}])
        assert store.record_ids == ["r1", "r2"]

    def test_all_pairs_count(self):
        store = RecordStore.from_rows([{"name": str(i)} for i in range(6)])
        assert len(list(store.all_pairs())) == 15
        assert store.total_pair_count() == 15

    def test_sources_and_cross_source_pairs(self):
        store = RecordStore()
        store.add(Record("a1", {"name": "x"}, source="abt"))
        store.add(Record("a2", {"name": "y"}, source="abt"))
        store.add(Record("b1", {"name": "z"}, source="buy"))
        assert store.sources() == ["abt", "buy"]
        cross = list(store.cross_source_pairs("abt", "buy"))
        assert len(cross) == 2
        assert all(pair[0].source == "abt" and pair[1].source == "buy" for pair in cross)

    def test_attribute_names_union_in_order(self):
        store = RecordStore()
        store.add(Record("r1", {"name": "a", "city": "x"}))
        store.add(Record("r2", {"name": "b", "price": "1"}))
        assert store.attribute_names() == ["name", "city", "price"]

    def test_iteration_preserves_insertion_order(self):
        store = RecordStore.from_records([Record(f"r{i}", {"v": str(i)}) for i in range(5)])
        assert [record.record_id for record in store] == [f"r{i}" for i in range(5)]


# --------------------------------------------------------- preprocessing
class TestPreprocessing:
    def test_normalize_text_lowercases_and_strips_punctuation(self):
        assert normalize_text("Apple iPad-2, 16GB (WiFi)!") == "apple ipad 2 16gb wifi"

    def test_normalize_text_collapses_whitespace(self):
        assert normalize_text("  a   b  ") == "a b"

    def test_normalize_text_empty(self):
        assert normalize_text("") == ""
        assert normalize_text("!!!") == ""

    def test_normalize_record(self):
        record = Record("r1", {"name": "Oceana!", "city": "New York"})
        normalized = normalize_record(record)
        assert normalized.get("name") == "oceana"
        assert normalized.get("city") == "new york"
        assert normalized.record_id == "r1"

    def test_strip_price_symbols(self):
        assert strip_price_symbols("$1,299.00") == "1299.00"


# ------------------------------------------------------------ tokenisers
class TestTokenizers:
    def test_whitespace_tokenizer(self):
        tokenizer = WhitespaceTokenizer()
        assert tokenizer.tokenize("iPad Two 16GB") == ["ipad", "two", "16gb"]
        assert tokenizer.token_set("a b a") == frozenset({"a", "b"})

    def test_whitespace_tokenizer_empty(self):
        assert WhitespaceTokenizer().tokenize("") == []

    def test_word_tokenizer_filters_stop_words_and_short_tokens(self):
        tokenizer = WordTokenizer(stop_words=["the"], min_length=2)
        assert tokenizer.tokenize("the a cafe") == ["cafe"]

    def test_word_tokenizer_rejects_bad_min_length(self):
        with pytest.raises(ValueError):
            WordTokenizer(min_length=0)

    def test_qgram_tokenizer_padded(self):
        tokenizer = QGramTokenizer(q=2, pad=True, pad_char="#")
        grams = tokenizer.tokenize("ab")
        assert grams == ["#a", "ab", "b#"]

    def test_qgram_tokenizer_unpadded_short_text(self):
        tokenizer = QGramTokenizer(q=5, pad=False)
        assert tokenizer.tokenize("ab") == ["ab"]

    def test_qgram_rejects_invalid_params(self):
        with pytest.raises(ValueError):
            QGramTokenizer(q=0)
        with pytest.raises(ValueError):
            QGramTokenizer(pad_char="##")

    def test_record_token_set_pools_attributes(self):
        record = Record("r1", {"name": "iPad Two", "price": "$490"})
        tokens = record_token_set(record)
        assert tokens == frozenset({"ipad", "two", "490"})

    def test_record_token_list_keeps_duplicates(self):
        record = Record("r1", {"name": "a a b"})
        assert record_token_list(record) == ["a", "a", "b"]


# ------------------------------------------------------------------ pairs
class TestPairs:
    def test_canonical_pair_orders_ids(self):
        assert canonical_pair("r2", "r1") == ("r1", "r2")
        with pytest.raises(ValueError):
            canonical_pair("r1", "r1")

    def test_record_pair_is_unordered(self):
        assert RecordPair("b", "a") == RecordPair("a", "b")
        assert hash(RecordPair("b", "a")) == hash(RecordPair("a", "b"))

    def test_record_pair_likelihood_validation(self):
        with pytest.raises(ValueError):
            RecordPair("a", "b", likelihood=1.5)

    def test_record_pair_other(self):
        pair = RecordPair("a", "b")
        assert pair.other("a") == "b"
        assert pair.other("b") == "a"
        with pytest.raises(KeyError):
            pair.other("c")

    def test_pair_set_deduplicates_and_keeps_higher_likelihood(self):
        pairs = PairSet()
        pairs.add(RecordPair("a", "b", likelihood=0.4))
        pairs.add(RecordPair("b", "a", likelihood=0.9))
        assert len(pairs) == 1
        assert pairs.get("a", "b").likelihood == 0.9

    def test_pair_set_contains(self):
        pairs = PairSet([RecordPair("a", "b", likelihood=0.5)])
        assert ("b", "a") in pairs
        assert RecordPair("a", "b") in pairs
        assert ("a", "c") not in pairs

    def test_filter_by_likelihood(self, simple_pairs):
        filtered = simple_pairs.filter_by_likelihood(0.75)
        assert filtered.to_key_set() == frozenset({("a", "b"), ("b", "c")})

    def test_filter_drops_unscored_pairs(self):
        pairs = PairSet([RecordPair("a", "b")])
        assert len(pairs.filter_by_likelihood(0.0)) == 0

    def test_sorted_by_likelihood(self, simple_pairs):
        ordered = simple_pairs.sorted_by_likelihood()
        likelihoods = [pair.likelihood for pair in ordered]
        assert likelihoods == sorted(likelihoods, reverse=True)

    def test_record_ids_and_intersection(self, simple_pairs):
        assert simple_pairs.record_ids() == {"a", "b", "c", "d", "e"}
        overlap = simple_pairs.intersection_keys([("b", "a"), ("x", "y")])
        assert overlap == {("a", "b")}

    def test_from_keys_roundtrip(self):
        keys = [("a", "b"), ("c", "d")]
        assert PairSet.from_keys(keys).to_key_set() == frozenset(keys)
