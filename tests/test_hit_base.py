"""Unit tests for the HIT data structures and pair-based generation."""

import math

import pytest

from repro.hit.base import ClusterBasedHIT, HITBatch, PairBasedHIT, validate_cluster_cover
from repro.hit.pair_generation import PairHITGenerator
from repro.records.pairs import PairSet, RecordPair


class TestPairBasedHIT:
    def test_pairs_canonicalised(self):
        hit = PairBasedHIT("h1", (("r2", "r1"), ("r3", "r4")))
        assert hit.pairs == (("r1", "r2"), ("r3", "r4"))
        assert hit.size == 2
        assert hit.record_ids == {"r1", "r2", "r3", "r4"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PairBasedHIT("h1", ())

    def test_checkable_pairs(self):
        hit = PairBasedHIT("h1", (("a", "b"),))
        assert hit.checkable_pairs() == {("a", "b")}


class TestClusterBasedHIT:
    def test_basic_properties(self):
        hit = ClusterBasedHIT("h1", ("r1", "r2", "r3"))
        assert hit.size == 3
        assert hit.contains_pair("r1", "r3")
        assert not hit.contains_pair("r1", "r9")

    def test_duplicate_records_rejected(self):
        with pytest.raises(ValueError):
            ClusterBasedHIT("h1", ("r1", "r1"))

    def test_checkable_pairs_all_internal(self):
        hit = ClusterBasedHIT("h1", ("a", "b", "c"))
        assert hit.checkable_pairs() == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_checkable_pairs_restricted_to_candidates(self):
        hit = ClusterBasedHIT("h1", ("a", "b", "c"))
        assert hit.checkable_pairs([("a", "b"), ("c", "d")]) == {("a", "b")}


class TestHITBatch:
    def test_cover_bookkeeping(self):
        candidates = {("a", "b"), ("b", "c"), ("d", "e")}
        batch = HITBatch(
            hit_type="cluster",
            hits=[ClusterBasedHIT("h1", ("a", "b", "c"))],
            candidate_pairs=candidates,
            cluster_size=3,
        )
        assert batch.covered_pairs() == {("a", "b"), ("b", "c")}
        assert batch.uncovered_pairs() == {("d", "e")}
        assert not batch.is_valid_cover()
        assert batch.max_hit_size() == 3

    def test_pair_to_hits_mapping(self):
        batch = HITBatch(
            hit_type="cluster",
            hits=[
                ClusterBasedHIT("h1", ("a", "b")),
                ClusterBasedHIT("h2", ("a", "b", "c")),
            ],
            candidate_pairs={("a", "b"), ("b", "c")},
            cluster_size=3,
        )
        mapping = batch.pair_to_hits()
        assert set(mapping[("a", "b")]) == {"h1", "h2"}
        assert mapping[("b", "c")] == ["h2"]

    def test_invalid_hit_type(self):
        with pytest.raises(ValueError):
            HITBatch(hit_type="other")


class TestValidateClusterCover:
    def test_accepts_valid_cover(self, example_pairs):
        hits = [
            ClusterBasedHIT("h1", ("r1", "r2", "r3", "r7")),
            ClusterBasedHIT("h2", ("r3", "r4", "r5", "r6")),
            ClusterBasedHIT("h3", ("r4", "r7", "r8", "r9")),
        ]
        validate_cluster_cover(hits, example_pairs, cluster_size=4)

    def test_rejects_oversized_hit(self, example_pairs):
        hits = [ClusterBasedHIT("h1", tuple(f"r{i}" for i in range(1, 10)))]
        with pytest.raises(ValueError, match="exceeding"):
            validate_cluster_cover(hits, example_pairs, cluster_size=4)

    def test_rejects_uncovered_pairs(self, example_pairs):
        hits = [ClusterBasedHIT("h1", ("r1", "r2", "r3", "r7"))]
        with pytest.raises(ValueError, match="not covered"):
            validate_cluster_cover(hits, example_pairs, cluster_size=4)


class TestPairHITGeneration:
    def test_hit_count_is_ceiling(self, example_pairs):
        generator = PairHITGenerator(pairs_per_hit=2)
        batch = generator.generate(example_pairs)
        assert batch.hit_count == math.ceil(len(example_pairs) / 2) == 5
        assert batch.is_valid_cover()
        assert generator.expected_hit_count(len(example_pairs)) == 5

    def test_every_pair_appears_exactly_once(self, example_pairs):
        batch = PairHITGenerator(pairs_per_hit=3).generate(example_pairs)
        seen = [pair for hit in batch.hits for pair in hit.pairs]
        assert sorted(seen) == sorted(example_pairs.keys())

    def test_likelihood_ordering(self, simple_pairs):
        batch = PairHITGenerator(pairs_per_hit=2, order_by_likelihood=True).generate(simple_pairs)
        first_hit = batch.hits[0]
        assert ("a", "b") in first_hit.pairs  # highest likelihood first

    def test_insertion_ordering(self, simple_pairs):
        batch = PairHITGenerator(pairs_per_hit=10, order_by_likelihood=False).generate(simple_pairs)
        assert list(batch.hits[0].pairs) == list(simple_pairs.keys())

    def test_empty_pair_set(self):
        batch = PairHITGenerator(pairs_per_hit=4).generate(PairSet())
        assert batch.hit_count == 0
        assert batch.is_valid_cover()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PairHITGenerator(pairs_per_hit=0)
