"""Tests for majority-vote and Dawid-Skene aggregation."""

import math
import random

import numpy as np
import pytest

from repro.aggregation.dawid_skene import DawidSkeneAggregator
from repro.aggregation.majority import MajorityAggregator, majority_vote, vote_matrix
from repro.records.pairs import canonical_pair


def make_votes(truth, workers, rng):
    """Simulate votes: each worker is (id, accuracy) and votes on every pair."""
    votes = []
    for pair_key, is_match in truth.items():
        for worker_id, accuracy in workers:
            answer = is_match if rng.random() < accuracy else not is_match
            votes.append((worker_id, pair_key, answer))
    return votes


class TestMajority:
    def test_majority_vote_fractions(self):
        votes = [
            ("w1", ("a", "b"), True),
            ("w2", ("a", "b"), True),
            ("w3", ("a", "b"), False),
            ("w1", ("c", "d"), False),
        ]
        fractions = majority_vote(votes)
        assert fractions[("a", "b")] == pytest.approx(2 / 3)
        assert fractions[("c", "d")] == 0.0

    def test_majority_decisions_tie_is_non_match(self):
        votes = [("w1", ("a", "b"), True), ("w2", ("a", "b"), False)]
        decisions = MajorityAggregator().decisions(votes)
        assert decisions[("a", "b")] is False

    def test_pair_keys_canonicalised(self):
        votes = [("w1", ("b", "a"), True), ("w2", ("a", "b"), True)]
        fractions = majority_vote(votes)
        assert fractions == {("a", "b"): 1.0}

    def test_vote_matrix_groups_by_pair(self):
        votes = [("w1", ("a", "b"), True), ("w2", ("a", "b"), False)]
        matrix = vote_matrix(votes)
        assert len(matrix[("a", "b")]) == 2


class TestDawidSkene:
    def test_empty_votes(self):
        result = DawidSkeneAggregator().run([])
        assert result.posteriors == {}
        assert result.converged

    def test_unanimous_votes(self):
        votes = [(f"w{i}", ("a", "b"), True) for i in range(3)]
        votes += [(f"w{i}", ("c", "d"), False) for i in range(3)]
        posteriors = DawidSkeneAggregator().aggregate(votes)
        assert posteriors[("a", "b")] > 0.9
        assert posteriors[("c", "d")] < 0.1

    def test_recovers_truth_with_reliable_majority(self):
        rng = random.Random(0)
        truth = {(f"p{i}", f"q{i}"): (i % 3 == 0) for i in range(60)}
        workers = [("good1", 0.95), ("good2", 0.9), ("good3", 0.92)]
        votes = make_votes(truth, workers, rng)
        decisions = DawidSkeneAggregator().run(votes).decisions()
        accuracy = sum(decisions[key] == truth[key] for key in truth) / len(truth)
        assert accuracy >= 0.95

    def test_downweights_spammers_better_than_majority(self):
        """With 1 good worker and 2 random spammers, EM beats plain majority.

        This is exactly the Section-7.3 motivation for using the EM-based
        algorithm instead of vote averaging: random spammers dilute the
        majority, while EM learns that their votes carry no information.
        """
        rng = random.Random(1)
        truth = {(f"p{i}", f"q{i}"): (i % 2 == 0) for i in range(120)}
        votes = []
        for pair_key, is_match in truth.items():
            votes.append(("good1", pair_key, is_match if rng.random() < 0.95 else not is_match))
            votes.append(("good2", pair_key, is_match if rng.random() < 0.9 else not is_match))
            votes.append(("spam", pair_key, rng.random() < 0.5))
        ds_decisions = DawidSkeneAggregator().run(votes).decisions()
        mv_decisions = MajorityAggregator().decisions(votes)
        ds_accuracy = sum(ds_decisions[key] == truth[key] for key in truth) / len(truth)
        mv_accuracy = sum(mv_decisions[key] == truth[key] for key in truth) / len(truth)
        assert ds_accuracy >= mv_accuracy
        assert ds_accuracy >= 0.85

    def test_worker_accuracy_estimates(self):
        rng = random.Random(2)
        truth = {(f"p{i}", f"q{i}"): (i % 2 == 0) for i in range(100)}
        workers = [("reliable", 0.97), ("noisy", 0.6), ("other", 0.92)]
        votes = make_votes(truth, workers, rng)
        result = DawidSkeneAggregator().run(votes)
        reliable_sens, reliable_spec = result.worker_accuracy["reliable"]
        noisy_sens, noisy_spec = result.worker_accuracy["noisy"]
        assert reliable_sens > noisy_sens
        assert reliable_spec > noisy_spec

    def test_posteriors_in_unit_interval(self):
        rng = random.Random(3)
        truth = {(f"p{i}", f"q{i}"): (i % 4 == 0) for i in range(40)}
        votes = make_votes(truth, [("a", 0.8), ("b", 0.7), ("c", 0.55)], rng)
        posteriors = DawidSkeneAggregator().aggregate(votes)
        assert all(0.0 <= value <= 1.0 for value in posteriors.values())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DawidSkeneAggregator(max_iterations=0)
        with pytest.raises(ValueError):
            DawidSkeneAggregator(smoothing=0.0)

    def test_convergence_flag(self):
        votes = [(f"w{i}", ("a", "b"), True) for i in range(3)]
        result = DawidSkeneAggregator(max_iterations=100).run(votes)
        assert result.converged
        assert result.iterations <= 100


def _reference_em(votes, max_iterations=100, tolerance=1e-6, smoothing=4.0,
                  anchor_accuracy=0.75):
    """The pre-vectorization per-vote EM loop, kept verbatim as the oracle
    the numpy scatter-add implementation is regression-tested against."""
    votes = [
        (worker_id, canonical_pair(*pair_key), bool(answer))
        for worker_id, pair_key, answer in votes
    ]
    pair_keys = sorted({pair_key for _, pair_key, _ in votes})
    worker_ids = sorted({worker_id for worker_id, _, _ in votes})
    pair_index = {key: index for index, key in enumerate(pair_keys)}
    worker_index = {worker: index for index, worker in enumerate(worker_ids)}
    n_pairs, n_workers = len(pair_keys), len(worker_ids)
    votes_by_pair = [[] for _ in range(n_pairs)]
    for worker_id, pair_key, answer in votes:
        votes_by_pair[pair_index[pair_key]].append((worker_index[worker_id], answer))
    initial = majority_vote(votes)
    posterior = np.clip(
        np.array([initial[key] for key in pair_keys], dtype=float), 1e-6, 1 - 1e-6
    )
    sensitivity = np.full(n_workers, 0.8)
    specificity = np.full(n_workers, 0.8)
    iterations, converged = 0, False
    for iterations in range(1, max_iterations + 1):
        yes_match = np.full(n_workers, anchor_accuracy * smoothing)
        total_match = np.full(n_workers, smoothing)
        no_nonmatch = np.full(n_workers, anchor_accuracy * smoothing)
        total_nonmatch = np.full(n_workers, smoothing)
        for pair_position, pair_votes in enumerate(votes_by_pair):
            p_match = posterior[pair_position]
            for worker_position, answer in pair_votes:
                total_match[worker_position] += p_match
                total_nonmatch[worker_position] += 1 - p_match
                if answer:
                    yes_match[worker_position] += p_match
                else:
                    no_nonmatch[worker_position] += 1 - p_match
        sensitivity = yes_match / total_match
        specificity = no_nonmatch / total_nonmatch
        prior = float(np.clip(np.mean(posterior), 1e-6, 1 - 1e-6))
        new_posterior = np.empty_like(posterior)
        for pair_position, pair_votes in enumerate(votes_by_pair):
            log_match = math.log(prior)
            log_nonmatch = math.log(1 - prior)
            for worker_position, answer in pair_votes:
                if answer:
                    log_match += math.log(sensitivity[worker_position])
                    log_nonmatch += math.log(1 - specificity[worker_position])
                else:
                    log_match += math.log(1 - sensitivity[worker_position])
                    log_nonmatch += math.log(specificity[worker_position])
            maximum = max(log_match, log_nonmatch)
            numerator = math.exp(log_match - maximum)
            new_posterior[pair_position] = numerator / (
                numerator + math.exp(log_nonmatch - maximum)
            )
        change = float(np.max(np.abs(new_posterior - posterior)))
        posterior = new_posterior
        if change < tolerance:
            converged = True
            break
    return (
        {key: float(posterior[pair_index[key]]) for key in pair_keys},
        {
            worker: (
                float(sensitivity[worker_index[worker]]),
                float(specificity[worker_index[worker]]),
            )
            for worker in worker_ids
        },
        iterations,
        converged,
    )


class TestDawidSkeneVectorizationRegression:
    """The numpy scatter-add EM must reproduce the per-vote loop exactly."""

    @pytest.mark.parametrize("seed", (0, 1, 2, 3))
    def test_matches_reference_loop_on_random_votes(self, seed):
        rng = random.Random(seed)
        truth = {(f"p{i}", f"q{i}"): (i % 3 == 0) for i in range(rng.randint(5, 50))}
        workers = [(f"w{j}", rng.uniform(0.5, 0.99)) for j in range(rng.randint(1, 8))]
        votes = []
        for pair_key, is_match in truth.items():
            for worker_id, accuracy in workers:
                if rng.random() < 0.2:
                    continue  # sparse vote matrix: not everyone votes on everything
                answer = is_match if rng.random() < accuracy else not is_match
                votes.append((worker_id, pair_key, answer))
        if not votes:
            return
        result = DawidSkeneAggregator().run(votes)
        posteriors, accuracy, iterations, converged = _reference_em(votes)
        assert result.iterations == iterations
        assert result.converged == converged
        assert set(result.posteriors) == set(posteriors)
        for key, expected in posteriors.items():
            assert result.posteriors[key] == pytest.approx(expected, abs=1e-9)
        for worker, (sens, spec) in accuracy.items():
            got_sens, got_spec = result.worker_accuracy[worker]
            assert got_sens == pytest.approx(sens, abs=1e-9)
            assert got_spec == pytest.approx(spec, abs=1e-9)

    def test_single_vote(self):
        result = DawidSkeneAggregator().run([("w1", ("a", "b"), True)])
        posteriors, _, _, _ = _reference_em([("w1", ("a", "b"), True)])
        assert result.posteriors[("a", "b")] == pytest.approx(
            posteriors[("a", "b")], abs=1e-12
        )
