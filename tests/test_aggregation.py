"""Tests for majority-vote and Dawid-Skene aggregation."""

import random

import pytest

from repro.aggregation.dawid_skene import DawidSkeneAggregator
from repro.aggregation.majority import MajorityAggregator, majority_vote, vote_matrix


def make_votes(truth, workers, rng):
    """Simulate votes: each worker is (id, accuracy) and votes on every pair."""
    votes = []
    for pair_key, is_match in truth.items():
        for worker_id, accuracy in workers:
            answer = is_match if rng.random() < accuracy else not is_match
            votes.append((worker_id, pair_key, answer))
    return votes


class TestMajority:
    def test_majority_vote_fractions(self):
        votes = [
            ("w1", ("a", "b"), True),
            ("w2", ("a", "b"), True),
            ("w3", ("a", "b"), False),
            ("w1", ("c", "d"), False),
        ]
        fractions = majority_vote(votes)
        assert fractions[("a", "b")] == pytest.approx(2 / 3)
        assert fractions[("c", "d")] == 0.0

    def test_majority_decisions_tie_is_non_match(self):
        votes = [("w1", ("a", "b"), True), ("w2", ("a", "b"), False)]
        decisions = MajorityAggregator().decisions(votes)
        assert decisions[("a", "b")] is False

    def test_pair_keys_canonicalised(self):
        votes = [("w1", ("b", "a"), True), ("w2", ("a", "b"), True)]
        fractions = majority_vote(votes)
        assert fractions == {("a", "b"): 1.0}

    def test_vote_matrix_groups_by_pair(self):
        votes = [("w1", ("a", "b"), True), ("w2", ("a", "b"), False)]
        matrix = vote_matrix(votes)
        assert len(matrix[("a", "b")]) == 2


class TestDawidSkene:
    def test_empty_votes(self):
        result = DawidSkeneAggregator().run([])
        assert result.posteriors == {}
        assert result.converged

    def test_unanimous_votes(self):
        votes = [(f"w{i}", ("a", "b"), True) for i in range(3)]
        votes += [(f"w{i}", ("c", "d"), False) for i in range(3)]
        posteriors = DawidSkeneAggregator().aggregate(votes)
        assert posteriors[("a", "b")] > 0.9
        assert posteriors[("c", "d")] < 0.1

    def test_recovers_truth_with_reliable_majority(self):
        rng = random.Random(0)
        truth = {(f"p{i}", f"q{i}"): (i % 3 == 0) for i in range(60)}
        workers = [("good1", 0.95), ("good2", 0.9), ("good3", 0.92)]
        votes = make_votes(truth, workers, rng)
        decisions = DawidSkeneAggregator().run(votes).decisions()
        accuracy = sum(decisions[key] == truth[key] for key in truth) / len(truth)
        assert accuracy >= 0.95

    def test_downweights_spammers_better_than_majority(self):
        """With 1 good worker and 2 random spammers, EM beats plain majority.

        This is exactly the Section-7.3 motivation for using the EM-based
        algorithm instead of vote averaging: random spammers dilute the
        majority, while EM learns that their votes carry no information.
        """
        rng = random.Random(1)
        truth = {(f"p{i}", f"q{i}"): (i % 2 == 0) for i in range(120)}
        votes = []
        for pair_key, is_match in truth.items():
            votes.append(("good1", pair_key, is_match if rng.random() < 0.95 else not is_match))
            votes.append(("good2", pair_key, is_match if rng.random() < 0.9 else not is_match))
            votes.append(("spam", pair_key, rng.random() < 0.5))
        ds_decisions = DawidSkeneAggregator().run(votes).decisions()
        mv_decisions = MajorityAggregator().decisions(votes)
        ds_accuracy = sum(ds_decisions[key] == truth[key] for key in truth) / len(truth)
        mv_accuracy = sum(mv_decisions[key] == truth[key] for key in truth) / len(truth)
        assert ds_accuracy >= mv_accuracy
        assert ds_accuracy >= 0.85

    def test_worker_accuracy_estimates(self):
        rng = random.Random(2)
        truth = {(f"p{i}", f"q{i}"): (i % 2 == 0) for i in range(100)}
        workers = [("reliable", 0.97), ("noisy", 0.6), ("other", 0.92)]
        votes = make_votes(truth, workers, rng)
        result = DawidSkeneAggregator().run(votes)
        reliable_sens, reliable_spec = result.worker_accuracy["reliable"]
        noisy_sens, noisy_spec = result.worker_accuracy["noisy"]
        assert reliable_sens > noisy_sens
        assert reliable_spec > noisy_spec

    def test_posteriors_in_unit_interval(self):
        rng = random.Random(3)
        truth = {(f"p{i}", f"q{i}"): (i % 4 == 0) for i in range(40)}
        votes = make_votes(truth, [("a", 0.8), ("b", 0.7), ("c", 0.55)], rng)
        posteriors = DawidSkeneAggregator().aggregate(votes)
        assert all(0.0 <= value <= 1.0 for value in posteriors.values())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DawidSkeneAggregator(max_iterations=0)
        with pytest.raises(ValueError):
            DawidSkeneAggregator(smoothing=0.0)

    def test_convergence_flag(self):
        votes = [(f"w{i}", ("a", "b"), True) for i in range(3)]
        result = DawidSkeneAggregator(max_iterations=100).run(votes)
        assert result.converged
        assert result.iterations <= 100
