"""Tests for the pluggable storage layer (repro.storage).

The central contract: a streaming session backed by the SQLite store is
**bit-identical** to one backed by process memory — same matches, same
posteriors to the last float bit, same digests — for any schedule of
batches, retractions, updates, flushes and crashes, and restoring a
SQLite-backed session is a *page-in* of committed state (plus a short
journal-tail replay) rather than a full journal replay.  On top of that,
the journal lifecycle (segment rotation, archival compaction) must never
lose an event, and restoring onto a *changed* result config re-joins the
stored records instead of refusing.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import drive, event_schedules

from repro.core.config import WorkflowConfig
from repro.datasets.restaurant import RestaurantGenerator
from repro.hit.pair_generation import PairHITGenerator
from repro.records.pairs import PairSet, RecordPair
from repro.records.record import Record, RecordStore
from repro.simjoin.columnar import argsort_descending
from repro.storage import MemoryStore, SqliteStore, StorageError, open_store
from repro.storage.sqlite import STORE_FILENAME
from repro.streaming import PersistenceError, StreamingResolver
from repro.streaming.persistence import (
    ARCHIVE_DIRNAME,
    JOURNAL_FILENAME,
    SEGMENT_PATTERN,
    SessionJournal,
    load_latest_snapshot,
)


def make_dataset(record_count=45, duplicate_pairs=8, seed=31):
    return RestaurantGenerator(
        record_count=record_count, duplicate_pairs=duplicate_pairs, seed=seed
    ).generate()


def make_config(**overrides):
    base = dict(
        likelihood_threshold=0.35, vote_mode="per-pair", aggregation="majority"
    )
    base.update(overrides)
    return WorkflowConfig(**base)


def assert_sessions_identical(left, right):
    snap_left, snap_right = left.snapshot(), right.snapshot()
    assert snap_left.matches == snap_right.matches
    assert snap_left.posteriors == snap_right.posteriors
    assert snap_left.likelihoods == snap_right.likelihoods
    assert snap_left.ranked_pairs == snap_right.ranked_pairs
    assert snap_left.cost == snap_right.cost
    assert snap_left.hit_count == snap_right.hit_count
    assert snap_left.assignment_count == snap_right.assignment_count
    assert left.state_digest() == right.state_digest()
    assert left.covered_pairs() == right.covered_pairs()
    assert sorted(left.store.record_ids) == sorted(right.store.record_ids)


def session_fingerprint(session):
    """State summary that can outlive the session's storage handle."""
    snap = session.snapshot()
    return {
        "matches": snap.matches,
        "posteriors": snap.posteriors,
        "likelihoods": snap.likelihoods,
        "ranked_pairs": snap.ranked_pairs,
        "cost": snap.cost,
        "hit_count": snap.hit_count,
        "assignment_count": snap.assignment_count,
        "digest": session.state_digest(),
        "covered": session.covered_pairs(),
        "record_ids": sorted(session.store.record_ids),
    }


# ------------------------------------------------------------- store basics
class TestOpenStore:
    def test_memory_is_the_default_backend(self):
        store = open_store("memory", None)
        assert isinstance(store, MemoryStore)
        assert not store.persistent

    def test_sqlite_requires_a_path(self):
        with pytest.raises(StorageError):
            open_store("sqlite", None)

    def test_unknown_backend_raises(self, tmp_path):
        with pytest.raises(StorageError):
            open_store("postgres", str(tmp_path / "x"))

    def test_garbage_file_is_rejected(self, tmp_path):
        target = tmp_path / "store.sqlite"
        target.write_bytes(b"this is not a database at all, not even close")
        with pytest.raises(StorageError):
            SqliteStore(target)


class TestSqliteRoundTrips:
    def test_records_survive_reopen_in_arrival_order(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        store = SqliteStore(path)
        store.add_record(Record("b", {"name": "beta"}, source="s1"))
        store.add_record(Record("a", {"name": "alpha"}))
        store.remove_record("zzz")  # unknown ids are a no-op
        store.commit()
        store.close()
        reopened = SqliteStore(path)
        assert reopened.record_ids() == ["b", "a"]
        assert reopened.get_record("b").source == "s1"
        assert reopened.get_record("a").attributes == {"name": "alpha"}
        assert reopened.record_at(1).record_id == "a"
        assert reopened.record_count() == 2
        assert reopened.has_record("b") and not reopened.has_record("zzz")
        reopened.close()

    def test_record_store_delegates_to_backing(self, tmp_path):
        store = SqliteStore(tmp_path / STORE_FILENAME)
        records = RecordStore(name="stream", backing=store)
        records.add(Record("r1", {"name": "x"}))
        assert "r1" in records and len(records) == 1
        assert [record.record_id for record in records] == ["r1"]
        records.remove("r1")
        assert len(records) == 0
        store.close()

    def test_meta_round_trips_json_values(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        store = SqliteStore(path)
        store.set_meta("config", {"threshold": 0.35, "attrs": None})
        store.set_meta("events_applied", 17)
        store.commit()
        store.close()
        reopened = SqliteStore(path)
        assert reopened.get_meta("config") == {"threshold": 0.35, "attrs": None}
        assert reopened.get_meta("events_applied") == 17
        assert reopened.get_meta("missing", "fallback") == "fallback"
        reopened.close()

    def test_join_substrate_round_trips(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        store = SqliteStore(path)
        store.extend_vocabulary([("alpha", 0), ("beta", 1)])
        store.join_append_rows([(0, "r1", None, False, False), (1, "r2", "s", True, False)])
        store.append_csr_chunk(np.array([0, 1], dtype=np.int64), np.array([2, 0], dtype=np.int64))
        store.join_mark_dead(1)
        store.commit()
        store.close()
        reopened = SqliteStore(path)
        state = reopened.load_join_state()
        assert state["rows"] == [(0, "r1", None, False, False), (1, "r2", "s", True, True)]
        assert state["vocabulary"] == {"alpha": 0, "beta": 1}
        assert state["indices"].tolist() == [0, 1]
        assert state["indptr"] == [0, 2, 2]
        reopened.close()

    def test_ledger_mutations_survive_reopen(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        store = SqliteStore(path)
        key, other = ("r1", "r2"), ("r3", "r4")
        store.ledger.add_pair(key, 0.75)
        store.ledger.add_pair(other, None)
        store.ledger.record_fresh_votes(key, [("w1", key, True), ("w2", key, False)])
        store.ledger.mark_covered([key])
        store.ledger.set_posterior(key, 2.0 / 3.0)
        store.ledger.clear_pending([key])
        store.ledger.drop_pair(other)
        store.commit()
        store.close()
        reopened = SqliteStore(path)
        ledger = reopened.ledger
        assert ledger.pairs == {key: 0.75}
        assert ledger.votes == {key: [("w1", key, True), ("w2", key, False)]}
        assert ledger.vote_rounds == {key: 1}
        assert ledger.pending_votes == {}  # cleared counters stay popped
        assert ledger.posteriors == {key: 2.0 / 3.0}  # bit-exact REAL round trip
        assert ledger.covered == {key}
        reopened.close()

    def test_provenance_and_workload_round_trip(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        store = SqliteStore(path)
        store.prov_write(("r1", "r2"), 3, ["b3:h0"], [(3, 0, 3)])
        store.prov_write(("r1", "r3"), 4, [], [])
        store.prov_delete([("r1", "r3")])
        store.append_assignment_seconds([1.5, 2.25])
        store.commit()
        store.close()
        reopened = SqliteStore(path)
        assert reopened.load_provenance() == [(("r1", "r2"), 3, ["b3:h0"], [(3, 0, 3)])]
        assert reopened.load_assignment_seconds() == [1.5, 2.25]
        reopened.close()

    def test_rollback_discards_the_open_event(self, tmp_path):
        path = tmp_path / STORE_FILENAME
        store = SqliteStore(path)
        store.add_record(Record("r1", {"name": "x"}))
        store.commit()
        store.add_record(Record("r2", {"name": "y"}))
        store.rollback()  # crash mid-event: back to the last event boundary
        store.close()
        reopened = SqliteStore(path)
        assert reopened.record_ids() == ["r1"]
        reopened.close()


# --------------------------------------------------- backend bit-identity
class TestBackendBitIdentity:
    def test_simple_run_matches_memory_backend(self, tmp_path):
        dataset = make_dataset()
        records = list(dataset.store)
        mem = StreamingResolver(config=make_config())
        sql = StreamingResolver(
            config=make_config(
                storage_backend="sqlite",
                storage_path=str(tmp_path / STORE_FILENAME),
            )
        )
        for session in (mem, sql):
            session.add_truth(dataset.ground_truth)
            for start in range(0, len(records), 15):
                session.add_batch(records[start : start + 15])
            session.retract(records[2].record_id)
            session.update(records[4].with_attributes(name="rewritten"))
            session.flush()
        assert_sessions_identical(mem, sql)
        sql.storage.close()

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        data=st.data(),
        schedule=event_schedules(min_size=2, max_size=6),
    )
    def test_property_sqlite_equals_memory_across_crash_schedules(
        self, tmp_path_factory, data, schedule
    ):
        """Random schedules with a crash+restore at a random point.

        The memory-backed session runs the schedule uninterrupted; the
        SQLite-backed durable session runs a prefix, crashes (its open
        transaction rolls back, the process state is dropped), restores by
        paging the store back in, and runs the rest — the final states
        must be bit-identical.
        """
        dataset = make_dataset(record_count=40, duplicate_pairs=8, seed=47)
        records = list(dataset.store)
        mem = StreamingResolver(config=make_config())
        mem.add_truth(dataset.ground_truth)
        drive(mem, records, schedule)

        directory = tmp_path_factory.mktemp("sqlsession")
        config = make_config(
            storage_backend="sqlite",
            checkpoint_dir=str(directory),
            checkpoint_every_batches=0,
            journal_segment_events=data.draw(
                st.sampled_from([0, 3]), label="segment_events"
            ),
        )
        sql = StreamingResolver(config=config)
        sql.add_truth(dataset.ground_truth)
        crash_at = data.draw(
            st.integers(min_value=0, max_value=len(schedule)), label="crash_at"
        )
        cursor = drive(sql, records, schedule[:crash_at])
        sql.storage.rollback()
        sql.storage.close()
        sql = StreamingResolver.restore(str(directory))
        drive(sql, records, schedule[crash_at:], cursor=cursor)
        assert_sessions_identical(mem, sql)
        sql.storage.close()

    def test_crash_mid_event_replays_from_the_journal_intent(self, tmp_path):
        """The store rolls back to the last event boundary; the journaled
        intent replays the interrupted event on restore."""
        from repro.streaming import persistence

        dataset = make_dataset()
        records = list(dataset.store)
        config = make_config(
            storage_backend="sqlite", checkpoint_dir=str(tmp_path)
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, 30, 10):
            resolver.add_batch(records[start : start + 10])
        # Crash mid-event: the intent hits the journal, the store
        # transaction is rolled back before the event-boundary commit.
        batch = records[30:40]
        resolver._journal_intent(
            "batch", {"records": [persistence.encode_record(r) for r in batch]}
        )
        resolver._apply_batch(batch, None)
        resolver.storage.rollback()
        resolver.storage.close()

        restored = StreamingResolver.restore(str(tmp_path))
        uninterrupted = StreamingResolver(config=make_config())
        uninterrupted.add_truth(dataset.ground_truth)
        for start in range(0, 40, 10):
            uninterrupted.add_batch(records[start : start + 10])
        assert_sessions_identical(uninterrupted, restored)
        restored.storage.close()


# ----------------------------------------------------------- page-in restore
class TestPageInRestore:
    def test_restore_pages_in_without_snapshot_or_replay(self, tmp_path):
        dataset = make_dataset()
        records = list(dataset.store)
        config = make_config(
            storage_backend="sqlite",
            checkpoint_dir=str(tmp_path),
            checkpoint_every_batches=0,  # no snapshots: the store is the state
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 12):
            resolver.add_batch(records[start : start + 12])
        expected = session_fingerprint(resolver)
        resolver.storage.close()
        assert load_latest_snapshot(tmp_path) is None
        restored = StreamingResolver.restore(str(tmp_path), resume_journal=False)
        assert session_fingerprint(restored) == expected
        restored.storage.close()

    def test_restored_session_continues_in_lockstep(self, tmp_path):
        dataset = make_dataset(record_count=60, duplicate_pairs=10)
        records = list(dataset.store)
        config = make_config(
            storage_backend="sqlite", checkpoint_dir=str(tmp_path)
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, 40, 13):
            resolver.add_batch(records[start:][: min(13, 40 - start)])
        resolver.storage.close()
        twin_dir = tmp_path.parent / (tmp_path.name + "-twin")
        twin = StreamingResolver(
            config=make_config(
                storage_backend="sqlite",
                storage_path=str(twin_dir / STORE_FILENAME),
            )
        )
        twin.add_truth(dataset.ground_truth)
        for start in range(0, 40, 13):
            twin.add_batch(records[start:][: min(13, 40 - start)])
        restored = StreamingResolver.restore(str(tmp_path))
        tail = records[40:]
        victim = records[3].record_id
        revised = records[5].with_attributes(name="revised beyond recognition")
        for session in (twin, restored):
            session.add_batch(tail[:10])
            session.retract(victim)
            session.update(revised)
            session.add_batch(tail[10:])
            session.flush()
        assert_sessions_identical(twin, restored)
        twin.storage.close()
        restored.storage.close()

    def test_store_only_session_restores_without_a_journal(self, tmp_path):
        """storage_path without checkpoint_dir: durability from the store
        alone (committed events survive; no journal to replay)."""
        dataset = make_dataset()
        records = list(dataset.store)
        config = make_config(
            storage_backend="sqlite",
            storage_path=str(tmp_path / STORE_FILENAME),
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 15):
            resolver.add_batch(records[start : start + 15])
        expected = session_fingerprint(resolver)
        resolver.storage.close()
        restored = StreamingResolver.restore(str(tmp_path), resume_journal=False)
        assert session_fingerprint(restored) == expected
        restored.storage.close()

    def test_fresh_session_refuses_an_occupied_store(self, tmp_path):
        config = make_config(
            storage_backend="sqlite",
            storage_path=str(tmp_path / STORE_FILENAME),
        )
        first = StreamingResolver(config=config)
        first.add_batch([Record("r1", {"t": "alpha"}), Record("r2", {"t": "alpha"})])
        first.storage.close()
        with pytest.raises(PersistenceError):
            StreamingResolver(config=config)


# ------------------------------------------------- journal lifecycle edges
class TestJournalLifecycle:
    def write_events(self, journal, count, start=0):
        for n in range(start, start + count):
            journal.append("batch", {"n": n})

    def test_rotation_produces_gapless_segments(self, tmp_path):
        journal = SessionJournal(tmp_path, segment_events=3)
        self.write_events(journal, 7)
        segments = journal.segments()
        assert [(first, last) for first, last, _ in segments] == [(1, 3), (4, 6)]
        assert (tmp_path / JOURNAL_FILENAME).exists()  # one event still active
        reread = SessionJournal(tmp_path, segment_events=3)
        assert [event.seq for event in reread.events()] == list(range(1, 8))

    def test_resume_across_a_rotated_boundary(self, tmp_path):
        """A restore whose replay tail spans closed segments and the active
        file sees one gapless event stream."""
        dataset = make_dataset()
        records = list(dataset.store)
        config = make_config(
            checkpoint_dir=str(tmp_path),
            checkpoint_every_batches=0,
            journal_segment_events=2,  # rotate aggressively
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 9):
            resolver.add_batch(records[start : start + 9])
        assert any(
            SEGMENT_PATTERN.match(name) for name in os.listdir(tmp_path)
        ), "expected rotated segments"
        restored = StreamingResolver.restore(str(tmp_path), resume_journal=False)
        assert_sessions_identical(resolver, restored)

    def test_crash_between_fill_and_rotation_is_finished_on_reopen(self, tmp_path):
        """An active file already at the rotation threshold (the crash hit
        after the append, before the rename) rotates when reopened."""
        journal = SessionJournal(tmp_path, segment_events=0)  # never rotates
        self.write_events(journal, 4)
        reopened = SessionJournal(tmp_path, segment_events=4)
        assert [(first, last) for first, last, _ in reopened.segments()] == [(1, 4)]
        assert not (tmp_path / JOURNAL_FILENAME).exists()
        assert reopened.append("flush", {}) == 5  # lands in a fresh active file
        assert [event.seq for event in SessionJournal(tmp_path).events()] == [1, 2, 3, 4, 5]

    def test_crash_mid_rotation_leaves_a_readable_journal(self, tmp_path):
        """Rotation is one os.replace: simulate the crash landing right
        after it (segment exists, no active file) and reopen."""
        journal = SessionJournal(tmp_path, segment_events=0)
        self.write_events(journal, 3)
        os.replace(
            tmp_path / JOURNAL_FILENAME,
            tmp_path / "journal-000000000001-000000000003.jsonl",
        )
        reopened = SessionJournal(tmp_path, segment_events=3)
        assert [event.seq for event in reopened.events()] == [1, 2, 3]
        assert reopened.append("flush", {}) == 4
        assert [event.seq for event in SessionJournal(tmp_path).events()] == [1, 2, 3, 4]

    def test_compaction_archives_only_covered_segments(self, tmp_path):
        journal = SessionJournal(tmp_path, segment_events=2)
        self.write_events(journal, 6)  # segments (1,2), (3,4), (5,6)
        archived = journal.compact_covered(4)
        assert [path.name for path in archived] == [
            "journal-000000000001-000000000002.jsonl",
            "journal-000000000003-000000000004.jsonl",
        ]
        # The uncovered segment survives in place and keeps replaying.
        assert [(first, last) for first, last, _ in journal.segments()] == [(5, 6)]
        assert [event.seq for event in journal.events()] == [5, 6]
        assert (tmp_path / ARCHIVE_DIRNAME).is_dir()
        reread = SessionJournal(tmp_path)
        assert [event.seq for event in reread.events()] == [5, 6]

    def test_compaction_of_nothing_is_a_no_op(self, tmp_path):
        journal = SessionJournal(tmp_path, segment_events=2)
        self.write_events(journal, 5)
        assert journal.compact_covered(1) == []  # first segment ends at 2
        assert [event.seq for event in journal.events()] == [1, 2, 3, 4, 5]

    def test_torn_tail_in_a_closed_segment_is_corruption(self, tmp_path):
        journal = SessionJournal(tmp_path, segment_events=2)
        self.write_events(journal, 4)
        first, last, path = journal.segments()[0]
        path.write_text(path.read_text()[:-20])
        with pytest.raises(Exception):
            SessionJournal(tmp_path)

    def test_save_compacts_the_journal_of_a_durable_session(self, tmp_path):
        dataset = make_dataset()
        records = list(dataset.store)
        config = make_config(
            checkpoint_dir=str(tmp_path),
            checkpoint_every_batches=0,
            journal_segment_events=2,
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 9):
            resolver.add_batch(records[start : start + 9])
        assert resolver._journal.segments(), "expected rotated segments"
        resolver.save()
        # Every closed segment is covered by the snapshot -> all archived.
        assert resolver._journal.segments() == []
        archived = os.listdir(tmp_path / ARCHIVE_DIRNAME)
        assert archived and all(SEGMENT_PATTERN.match(name) for name in archived)
        restored = StreamingResolver.restore(str(tmp_path), resume_journal=False)
        assert_sessions_identical(resolver, restored)

    def test_sqlite_restore_after_rotation_and_compaction(self, tmp_path):
        """The acceptance property: restore() on a rotated+compacted
        journal equals the uninterrupted session."""
        dataset = make_dataset()
        records = list(dataset.store)
        config = make_config(
            storage_backend="sqlite",
            checkpoint_dir=str(tmp_path),
            checkpoint_every_batches=0,
            journal_segment_events=2,
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, 27, 9):
            resolver.add_batch(records[start : start + 9])
        resolver.save()  # archives the store-covered segments
        resolver.add_batch(records[27:36])  # events beyond the compaction point
        resolver.storage.close()
        restored = StreamingResolver.restore(str(tmp_path))
        uninterrupted = StreamingResolver(config=make_config())
        uninterrupted.add_truth(dataset.ground_truth)
        for start in range(0, 36, 9):
            uninterrupted.add_batch(records[start : start + 9])
        assert_sessions_identical(uninterrupted, restored)
        restored.storage.close()


# ------------------------------------------------- re-join on config change
class TestRestoreRejoin:
    def run_session(self, directory, records, truth, **overrides):
        config = make_config(
            storage_backend="sqlite", checkpoint_dir=str(directory), **overrides
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(truth)
        for start in range(0, len(records), 12):
            resolver.add_batch(records[start : start + 12])
        return resolver

    def test_changed_threshold_triggers_a_rejoin(self, tmp_path):
        dataset = make_dataset()
        records = list(dataset.store)
        resolver = self.run_session(tmp_path, records, dataset.ground_truth)
        resolver.storage.close()
        new_config = make_config(
            storage_backend="sqlite",
            checkpoint_dir=str(tmp_path),
            likelihood_threshold=0.2,
            stream_batch_size=12,
        )
        rejoined = StreamingResolver.restore(str(tmp_path), config=new_config)
        # The re-joined session equals a fresh run under the new config.
        fresh = StreamingResolver(
            config=make_config(likelihood_threshold=0.2, stream_batch_size=12)
        )
        fresh.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 12):
            fresh.add_batch(records[start : start + 12])
        assert_sessions_identical(fresh, rejoined)
        # The old artifacts moved into the archive bucket.
        buckets = [
            name
            for name in os.listdir(tmp_path / ARCHIVE_DIRNAME)
            if name.startswith("rejoin-")
        ]
        assert len(buckets) == 1
        archived = os.listdir(tmp_path / ARCHIVE_DIRNAME / buckets[0])
        assert STORE_FILENAME in archived
        assert any(name == JOURNAL_FILENAME or SEGMENT_PATTERN.match(name) for name in archived)
        rejoined.storage.close()

    def test_unchanged_result_config_resumes_normally(self, tmp_path):
        dataset = make_dataset()
        records = list(dataset.store)
        resolver = self.run_session(tmp_path, records, dataset.ground_truth)
        expected = session_fingerprint(resolver)
        resolver.storage.close()
        # checkpoint_every_batches changes durability, not results: no rejoin.
        same_results = make_config(
            storage_backend="sqlite",
            checkpoint_dir=str(tmp_path),
            checkpoint_every_batches=99,
        )
        restored = StreamingResolver.restore(
            str(tmp_path), config=same_results, resume_journal=False
        )
        assert session_fingerprint(restored) == expected
        assert not (tmp_path / ARCHIVE_DIRNAME / "rejoin-000000000000").exists()
        restored.storage.close()

    def test_memory_session_rejoins_too(self, tmp_path):
        """The re-join path is backend-agnostic: snapshot/journal sessions
        re-ingest under the new config exactly like store-backed ones."""
        dataset = make_dataset()
        records = list(dataset.store)
        config = make_config(checkpoint_dir=str(tmp_path))
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 12):
            resolver.add_batch(records[start : start + 12])
        new_config = make_config(
            checkpoint_dir=str(tmp_path), likelihood_threshold=0.2, stream_batch_size=12
        )
        rejoined = StreamingResolver.restore(str(tmp_path), config=new_config)
        fresh = StreamingResolver(
            config=make_config(likelihood_threshold=0.2, stream_batch_size=12)
        )
        fresh.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 12):
            fresh.add_batch(records[start : start + 12])
        assert_sessions_identical(fresh, rejoined)


# --------------------------------------------- async crowd crash recovery
class TestAsyncCrashRecovery:
    """Crash recovery under partial votes.

    A durable asynchronous session killed while HITs are in flight (votes
    published but only partially delivered) must restore — snapshot plus
    journal-tail replay, or store page-in — to a state that converges to
    the uninterrupted twin bit-identically.  The async platform state
    (pending attempts, buffered deliveries, per-pair slot accumulators,
    starved backlog) rides in the snapshot/store meta, so replaying the
    journal tail re-derives the exact delivery schedule.
    """

    ASYNC = dict(
        crowd_mode="async",
        vote_timeout=3,
        crowd_max_retries=2,
        fault_plan=dict(
            seed=17, delay_ticks_max=5, drop_probability=0.3,
            duplicate_probability=0.2, reorder_probability=0.4,
            reorder_window_ticks=3, churn_probability=0.1,
        ),
    )

    def run_uninterrupted(self, records, truth, **overrides):
        resolver = StreamingResolver(config=make_config(**self.ASYNC, **overrides))
        resolver.add_truth(truth)
        for start in range(0, len(records), 10):
            resolver.add_batch(records[start : start + 10])
        resolver.flush()
        return resolver

    @pytest.mark.parametrize("backend", ("memory", "sqlite"))
    def test_crash_mid_delivery_restores_identically(self, tmp_path, backend):
        dataset = make_dataset()
        records = list(dataset.store)
        twin = self.run_uninterrupted(records, dataset.ground_truth)

        config = make_config(
            storage_backend=backend, checkpoint_dir=str(tmp_path), **self.ASYNC
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, 30, 10):
            resolver.add_batch(records[start : start + 10])
        # The crash is only interesting if votes really are in flight.
        assert resolver._inflight_rounds or resolver._slot_votes
        if backend == "sqlite":
            # Losing the open store transaction is part of the crash.
            resolver.storage.rollback()
        resolver.storage.close()

        restored = StreamingResolver.restore(str(tmp_path))
        for start in range(30, len(records), 10):
            restored.add_batch(records[start : start + 10])
        restored.flush()
        assert_sessions_identical(twin, restored)
        assert not restored._inflight_rounds and not restored._starved_pairs
        restored.storage.close()

    def test_crash_between_arrival_and_commit_replays_the_intent(self, tmp_path):
        """Votes that arrived inside an uncommitted event are not lost: the
        store rolls back to the last event boundary and the journaled
        intent replays the batch — including its poll of the async
        platform — deterministically."""
        from repro.streaming import persistence

        dataset = make_dataset()
        records = list(dataset.store)
        twin = self.run_uninterrupted(records[:40], dataset.ground_truth)

        config = make_config(
            storage_backend="sqlite", checkpoint_dir=str(tmp_path), **self.ASYNC
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, 30, 10):
            resolver.add_batch(records[start : start + 10])
        batch = records[30:40]
        resolver._journal_intent(
            "batch", {"records": [persistence.encode_record(r) for r in batch]}
        )
        resolver._apply_batch(batch, None)  # deliveries ingested, not committed
        resolver.storage.rollback()
        resolver.storage.close()

        restored = StreamingResolver.restore(str(tmp_path))
        restored.flush()
        assert_sessions_identical(twin, restored)
        restored.storage.close()

    def test_async_equals_sync_after_a_crash(self, tmp_path):
        """The robustness headline, end to end: crash + restore + faults
        still land on the synchronous baseline's matches and posteriors."""
        dataset = make_dataset()
        records = list(dataset.store)
        sync = StreamingResolver(config=make_config())
        sync.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 10):
            sync.add_batch(records[start : start + 10])
        sync.flush()

        config = make_config(
            storage_backend="sqlite", checkpoint_dir=str(tmp_path), **self.ASYNC
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, 20, 10):
            resolver.add_batch(records[start : start + 10])
        resolver.storage.rollback()
        resolver.storage.close()
        restored = StreamingResolver.restore(str(tmp_path))
        for start in range(20, len(records), 10):
            restored.add_batch(records[start : start + 10])
        restored.flush()
        snap_sync, snap_async = sync.snapshot(), restored.snapshot()
        assert snap_async.matches == snap_sync.matches
        assert snap_async.posteriors == snap_sync.posteriors
        assert snap_async.hit_count == snap_sync.hit_count
        restored.storage.close()

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        data=st.data(),
        schedule=event_schedules(min_size=2, max_size=5),
    )
    def test_property_async_crash_schedules_converge(
        self, tmp_path_factory, data, schedule
    ):
        """Random schedules (batches, retractions, updates, flushes) with a
        crash at a random point: the restored async session must end
        bit-identical to an uninterrupted async twin."""
        dataset = make_dataset(record_count=40, duplicate_pairs=8, seed=47)
        records = list(dataset.store)
        mem = StreamingResolver(config=make_config(**self.ASYNC))
        mem.add_truth(dataset.ground_truth)
        drive(mem, records, schedule)
        mem.flush()

        directory = tmp_path_factory.mktemp("asyncsession")
        config = make_config(
            storage_backend="sqlite",
            checkpoint_dir=str(directory),
            checkpoint_every_batches=0,
            **self.ASYNC,
        )
        sql = StreamingResolver(config=config)
        sql.add_truth(dataset.ground_truth)
        crash_at = data.draw(
            st.integers(min_value=0, max_value=len(schedule)), label="crash_at"
        )
        cursor = drive(sql, records, schedule[:crash_at])
        sql.storage.rollback()
        sql.storage.close()
        sql = StreamingResolver.restore(str(directory))
        drive(sql, records, schedule[crash_at:], cursor=cursor)
        sql.flush()
        assert_sessions_identical(mem, sql)
        sql.storage.close()


# ------------------------------------------------- columnar HIT generation
class TestColumnarPairGeneration:
    def test_to_arrays_densifies_missing_likelihoods(self):
        pairs = PairSet(
            [
                RecordPair("r1", "r2", likelihood=0.8),
                RecordPair("r3", "r4"),
                RecordPair("r5", "r6", likelihood=0.3),
            ]
        )
        keys, values = pairs.to_arrays()
        assert keys == [("r1", "r2"), ("r3", "r4"), ("r5", "r6")]
        assert values.dtype == np.float64
        assert values.tolist() == [0.8, -1.0, 0.3]

    def test_argsort_descending_is_stable(self):
        order = argsort_descending([0.5, 0.9, 0.5, -1.0, 0.9])
        assert order.tolist() == [1, 4, 0, 2, 3]

    @settings(max_examples=25, deadline=None)
    @given(
        likelihoods=st.lists(
            st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        ),
        pairs_per_hit=st.integers(min_value=1, max_value=7),
    )
    def test_property_columnar_ranking_equals_object_sort(
        self, likelihoods, pairs_per_hit
    ):
        """The vectorized argsort path produces exactly the HITs the old
        per-object stable sort did, for any likelihood multiset."""
        pairs = PairSet(
            RecordPair(f"r{2 * n}", f"r{2 * n + 1}", likelihood=value)
            for n, value in enumerate(likelihoods)
        )
        batch = PairHITGenerator(pairs_per_hit=pairs_per_hit).generate(pairs)
        reference = [pair.key for pair in pairs.sorted_by_likelihood()]
        flattened = [key for hit in batch.hits for key in hit.pairs]
        assert flattened == reference
        assert [hit.hit_id for hit in batch.hits] == [
            f"pair-hit-{n + 1}" for n in range(len(batch.hits))
        ]
        assert all(len(hit.pairs) <= pairs_per_hit for hit in batch.hits)
        assert batch.candidate_pairs == set(pairs.keys())

    def test_insertion_order_mode_is_untouched(self):
        pairs = PairSet(
            [
                RecordPair("r1", "r2", likelihood=0.1),
                RecordPair("r3", "r4", likelihood=0.9),
            ]
        )
        batch = PairHITGenerator(pairs_per_hit=10, order_by_likelihood=False).generate(pairs)
        assert batch.hits[0].pairs == (("r1", "r2"), ("r3", "r4"))
