"""Shared hypothesis strategies for the property-based test suite.

One definition of every randomized input shape the suite drives:
token/text/pair universes (similarity and HIT-cover properties), randomized
record stores with duplicates and empty-token records (backend-equivalence
properties), and event schedules of batches/retractions/updates/flushes
(storage and streaming equivalence).  The per-file copies these replaced
had already drifted apart once; import from here instead of re-declaring.

Not a test module (no ``test_`` prefix) — pytest imports it from the test
files through its rootdir-relative import of the ``tests`` directory.
"""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.crowd.faults import FaultPlan
from repro.records.pairs import PairSet, RecordPair
from repro.records.record import Record, RecordStore

# ------------------------------------------------------- text/token shapes
#: Small token vocabulary: guarantees overlapping token sets (and therefore
#: non-trivial similarities and candidate pairs) at tiny store sizes.
WORDS = ["ipad", "apple", "16gb", "wifi", "white", "2nd", "gen", "mini", "pro", "max"]

#: Record texts over :data:`WORDS` — products whose token sets collide often.
record_texts = st.lists(st.sampled_from(WORDS), max_size=6).map(" ".join)

#: Bounded token sets for direct similarity-function properties.
token_sets = st.sets(st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"]), max_size=8)

#: Short free-form texts for edit-distance properties.
short_text = st.text(alphabet=string.ascii_lowercase + " 0123456789", max_size=24)

#: A bounded vertex universe, so random edge sets form interesting graphs.
vertex_ids = st.integers(min_value=0, max_value=25).map(lambda i: f"v{i:02d}")

#: Likelihood thresholds that exercise the no-filtering, typical and
#: aggressive-pruning regimes of the join backends.
join_thresholds = st.sampled_from((0.0, 0.3, 0.7))

#: The three token-set similarity measures every join backend supports.
similarity_measures = st.sampled_from(("jaccard", "dice", "cosine"))


@st.composite
def random_stores(draw, with_sources=False):
    """Randomized stores with duplicates and empty-token records.

    Some records are exact duplicates of earlier ones (same text, distinct
    id) and some have no tokens at all — the edge cases the join backends
    must agree on.  With ``with_sources`` each record is tagged "abt" or
    "buy" for cross-source linkage joins.
    """
    texts = draw(st.lists(record_texts, min_size=2, max_size=14))
    duplicate_of = draw(
        st.lists(st.integers(min_value=0, max_value=len(texts) - 1), max_size=3)
    )
    texts.extend(texts[i] for i in duplicate_of)
    store = RecordStore()
    for i, text in enumerate(texts):
        source = ("abt", "buy")[draw(st.integers(0, 1))] if with_sources else None
        store.add(Record(f"r{i:03d}", {"name": text}, source=source))
    return store


@st.composite
def pair_sets(draw):
    """Random pair sets over a bounded vertex universe."""
    edges = draw(
        st.sets(
            st.tuples(vertex_ids, vertex_ids).filter(lambda pair: pair[0] != pair[1]),
            min_size=1,
            max_size=60,
        )
    )
    pairs = PairSet()
    for id_a, id_b in edges:
        pairs.add(RecordPair(id_a, id_b, likelihood=0.5))
    return pairs


@st.composite
def fault_plans(draw):
    """Random seeded crowd fault plans, from benign to outright hostile.

    Probabilities are drawn from small discrete grids (not continuous
    floats) so shrinking lands on readable plans and the hostile corner
    (drops + duplicates + reordering + churn + bursts all at once) is
    actually reachable within a handful of examples.
    """
    delay_min = draw(st.integers(min_value=0, max_value=2))
    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        delay_ticks_min=delay_min,
        delay_ticks_max=delay_min + draw(st.integers(min_value=0, max_value=4)),
        drop_probability=draw(st.sampled_from((0.0, 0.2, 0.5))),
        duplicate_probability=draw(st.sampled_from((0.0, 0.2, 0.4))),
        duplicate_delay_ticks=draw(st.integers(min_value=0, max_value=3)),
        reorder_probability=draw(st.sampled_from((0.0, 0.3, 0.6))),
        reorder_window_ticks=draw(st.integers(min_value=0, max_value=4)),
        churn_probability=draw(st.sampled_from((0.0, 0.2))),
        burst_every=draw(st.sampled_from((0, 2, 3))),
        burst_backlog_ticks=draw(st.integers(min_value=0, max_value=5)),
    )


# ---------------------------------------------------------- event schedules
def event_schedules(min_size=2, max_size=6):
    """Random streaming-session event schedules, interpreted by :func:`drive`.

    Arrival batches of 1-20 records, retractions/updates of a (modularly
    chosen) resident record, and flushes.
    """
    return st.lists(
        st.one_of(
            st.tuples(st.just("batch"), st.integers(min_value=1, max_value=20)),
            st.tuples(st.just("retract"), st.integers(min_value=0, max_value=10_000)),
            st.tuples(st.just("update"), st.integers(min_value=0, max_value=10_000)),
            st.tuples(st.just("flush"), st.just(0)),
        ),
        min_size=min_size,
        max_size=max_size,
    )

#: Seeds for shuffled arrival orders and arrival batch sizes used by the
#: streaming-equals-batch equivalence properties.
order_seeds = st.integers(min_value=0, max_value=10_000)
arrival_batch_sizes = st.integers(min_value=3, max_value=40)


def drive(resolver, records, schedule, cursor=0):
    """Apply a :data:`event_schedules` schedule deterministically.

    Returns the arrival cursor so a schedule can be split at an arbitrary
    point (crash simulation) and resumed with the same remaining records.
    """
    for action, argument in schedule:
        if action == "batch":
            batch = records[cursor : cursor + argument]
            cursor += argument
            if batch:
                resolver.add_batch(batch)
        elif action == "retract":
            resident = sorted(resolver.store.record_ids)
            if resident:
                resolver.retract(resident[argument % len(resident)])
        elif action == "update":
            resident = sorted(resolver.store.record_ids)
            if resident:
                record = resolver.store.get(resident[argument % len(resident)])
                resolver.update(record.with_attributes(name=f"revision {argument}"))
        elif action == "flush":
            resolver.flush()
    return cursor
