"""Tests for the incremental union-find with dirty-component tracking."""

import pytest

from repro.graph.components import labeled_components, split_components_with_labels
from repro.graph.graph import Graph
from repro.graph.union_find import IncrementalUnionFind


class TestIncrementalUnionFind:
    def test_singletons_start_dirty(self):
        uf = IncrementalUnionFind()
        assert uf.add("a")
        assert not uf.add("a")  # re-adding is a no-op
        assert uf.dirty_roots() == {"a"}
        assert uf.component_count == 1

    def test_union_merges_and_dirties(self):
        uf = IncrementalUnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        assert uf.component_count == 2
        assert uf.connected("a", "b")
        assert not uf.connected("a", "c")
        uf.clear_dirty()
        assert uf.dirty_roots() == set()
        root = uf.union("b", "c")
        assert uf.connected("a", "d")
        assert uf.dirty_roots() == {root}
        assert uf.component_size("a") == 4

    def test_internal_edge_dirties_component(self):
        uf = IncrementalUnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        uf.clear_dirty()
        uf.union("a", "c")  # already connected, but a new edge arrived
        assert uf.is_dirty("b")

    def test_dirtiness_survives_merges(self):
        uf = IncrementalUnionFind()
        uf.union("a", "b")
        uf.clear_dirty()
        uf.mark_dirty("a")
        # Merge the dirty component into a larger clean one: still dirty.
        uf.union("c", "d")
        uf.union("c", "e")
        uf.clear_dirty()
        uf.mark_dirty("a")
        root = uf.union("e", "a")
        assert root in uf.dirty_roots()
        assert uf.is_dirty("d")

    def test_components_grouping(self):
        uf = IncrementalUnionFind()
        uf.union("a", "b")
        uf.add("z")
        grouped = uf.components()
        assert sorted(sorted(members) for members in grouped.values()) == [
            ["a", "b"],
            ["z"],
        ]
        subset = uf.components(["a", "z"])
        assert sorted(len(v) for v in subset.values()) == [1, 1]

    def test_mark_dirty_unknown_raises(self):
        uf = IncrementalUnionFind()
        with pytest.raises(KeyError):
            uf.mark_dirty("ghost")

    def test_matches_batch_connected_components(self):
        """Incremental unions agree with the batch BFS on the same edges."""
        edges = [("a", "b"), ("b", "c"), ("d", "e"), ("f", "g"), ("g", "a")]
        graph = Graph.from_edges(edges)
        uf = IncrementalUnionFind()
        for u, v in edges:
            uf.union(u, v)
        components, labels = labeled_components(graph)
        for component in components:
            roots = {uf.find(vertex) for vertex in component}
            assert len(roots) == 1
        assert uf.component_count == len(components)
        # The label map groups vertices exactly like the union-find roots.
        for u in graph.vertices():
            for v in graph.vertices():
                assert (labels[u] == labels[v]) == uf.connected(u, v)


class TestLabeledComponents:
    def test_labels_match_component_lists(self):
        graph = Graph.from_edges([("a", "b"), ("c", "d"), ("d", "e")])
        graph.add_vertex("lonely")
        components, labels = labeled_components(graph)
        assert len(components) == 3
        for index, component in enumerate(components):
            for vertex in component:
                assert labels[vertex] == index
        assert set(labels) == set(graph.vertices())

    def test_split_with_labels_consistent(self):
        graph = Graph.from_edges(
            [("a", "b"), ("c", "d"), ("d", "e"), ("e", "f"), ("f", "g")]
        )
        small, large, labels = split_components_with_labels(graph, cluster_size=3)
        assert [sorted(c) for c in small] == [["a", "b"]]
        assert [sorted(c) for c in large] == [["c", "d", "e", "f", "g"]]
        # Two vertices share a component iff their labels agree.
        assert labels["c"] == labels["g"]
        assert labels["a"] != labels["c"]

    def test_split_with_labels_rejects_small_cluster_size(self):
        with pytest.raises(ValueError):
            split_components_with_labels(Graph(), cluster_size=1)
