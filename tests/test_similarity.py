"""Unit tests for similarity functions, TF-IDF and feature extraction."""

import math

import numpy as np
import pytest

from repro.records.record import Record, RecordStore
from repro.similarity.cosine import TfidfVectorizer, cosine_tfidf_similarity, sparse_dot
from repro.similarity.edit_distance import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.feature_vectors import FeatureExtractor, FeatureSpec
from repro.similarity.record_similarity import (
    AttributeSimilarity,
    CallableRecordSimilarity,
    JaccardRecordSimilarity,
    average_similarity,
)
from repro.similarity.set_similarity import (
    cosine_token_similarity,
    dice_similarity,
    jaccard_bag_similarity,
    jaccard_similarity,
    overlap_coefficient,
)


class TestSetSimilarities:
    def test_jaccard_paper_example(self):
        # J(r1, r2) = 4/7 from Section 2.1.1 of the paper.
        tokens_r1 = {"ipad", "two", "16gb", "wifi", "white"}
        tokens_r2 = {"ipad", "2nd", "generation", "16gb", "wifi", "white"}
        assert jaccard_similarity(tokens_r1, tokens_r2) == pytest.approx(4 / 7)

    def test_jaccard_disjoint_and_identical(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_jaccard_empty_conventions(self):
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity({"a"}, set()) == 0.0

    def test_overlap_coefficient(self):
        assert overlap_coefficient({"a", "b"}, {"a", "c", "d"}) == pytest.approx(0.5)
        assert overlap_coefficient(set(), {"a"}) == 0.0

    def test_dice(self):
        assert dice_similarity({"a", "b"}, {"a", "c"}) == pytest.approx(0.5)

    def test_cosine_token_similarity(self):
        assert cosine_token_similarity(["a", "b"], ["a", "b"]) == pytest.approx(1.0)
        assert cosine_token_similarity(["a"], ["b"]) == 0.0
        value = cosine_token_similarity(["a", "a", "b"], ["a"])
        assert value == pytest.approx(2 / math.sqrt(5))

    def test_jaccard_bag(self):
        assert jaccard_bag_similarity(["a", "a", "b"], ["a", "b", "b"]) == pytest.approx(0.5)

    def test_symmetry(self):
        a, b = {"x", "y", "z"}, {"y", "z", "w"}
        for function in (jaccard_similarity, overlap_coefficient, dice_similarity):
            assert function(a, b) == function(b, a)


class TestEditDistances:
    def test_levenshtein_classic(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_levenshtein_similarity_bounds(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0

    def test_levenshtein_symmetric(self):
        assert levenshtein_distance("flaw", "lawn") == levenshtein_distance("lawn", "flaw")

    def test_jaro_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)
        assert jaro_similarity("abc", "abc") == 1.0
        assert jaro_similarity("", "abc") == 0.0

    def test_jaro_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("martha", "marhta")
        boosted = jaro_winkler_similarity("martha", "marhta")
        assert boosted > plain
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)


class TestTfidf:
    def test_fit_transform_and_cosine(self):
        corpus = [["apple", "ipod"], ["apple", "ipad"], ["sony", "walkman"]]
        vectorizer = TfidfVectorizer().fit(corpus)
        assert vectorizer.is_fitted
        similarity = cosine_tfidf_similarity(["apple", "ipod"], ["apple", "ipod"], vectorizer)
        assert similarity == pytest.approx(1.0)
        cross = cosine_tfidf_similarity(["apple", "ipod"], ["sony", "walkman"], vectorizer)
        assert cross == 0.0

    def test_common_token_weighs_less_than_rare_token(self):
        corpus = [["apple", "x1"], ["apple", "x2"], ["apple", "x3"], ["apple", "rare"]]
        vectorizer = TfidfVectorizer().fit(corpus)
        assert vectorizer.idf("apple") < vectorizer.idf("rare")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["a"])

    def test_sparse_dot(self):
        assert sparse_dot({"a": 0.5, "b": 0.5}, {"a": 1.0}) == pytest.approx(0.5)

    def test_empty_document_vector(self):
        vectorizer = TfidfVectorizer().fit([["a"]])
        assert vectorizer.transform([]) == {}


class TestRecordSimilarity:
    def test_jaccard_record_similarity_all_attributes(self):
        a = Record("r1", {"name": "ipad two 16gb", "price": "490"})
        b = Record("r2", {"name": "ipad 16gb", "price": "490"})
        value = JaccardRecordSimilarity().similarity(a, b)
        assert value == pytest.approx(3 / 4)

    def test_jaccard_record_similarity_restricted_attributes(self, example_store):
        similarity = JaccardRecordSimilarity(attributes=["product_name"])
        value = similarity.similarity(example_store.get("r1"), example_store.get("r2"))
        assert value == pytest.approx(4 / 7)

    def test_attribute_similarity_edit(self):
        a = Record("r1", {"name": "oceana"})
        b = Record("r2", {"name": "oceanna"})
        value = AttributeSimilarity("name", "edit").similarity(a, b)
        assert value == pytest.approx(1 - 1 / 7)

    def test_attribute_similarity_unknown_function(self):
        with pytest.raises(ValueError):
            AttributeSimilarity("name", "nope")

    def test_callable_similarity_validates_range(self):
        bad = CallableRecordSimilarity(lambda a, b: 2.0)
        with pytest.raises(ValueError):
            bad.similarity(Record("r1", {}), Record("r2", {}))

    def test_average_similarity(self):
        a = Record("r1", {"name": "alpha beta"})
        b = Record("r2", {"name": "alpha beta"})
        combined = average_similarity(
            [AttributeSimilarity("name", "jaccard"), AttributeSimilarity("name", "edit")]
        )
        assert combined.similarity(a, b) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            average_similarity([])


class TestFeatureExtractor:
    def test_for_attributes_builds_cross_product(self):
        extractor = FeatureExtractor.for_attributes(["name", "city"], functions=("edit", "cosine"))
        assert extractor.dimension == 4
        assert "edit(name)" in extractor.feature_names

    def test_extract_shape_and_range(self, example_store):
        extractor = FeatureExtractor.for_attributes(["product_name"], functions=("edit", "cosine"))
        vector = extractor.extract(example_store.get("r1"), example_store.get("r2"))
        assert vector.shape == (2,)
        assert np.all((vector >= 0.0) & (vector <= 1.0))

    def test_extract_pairs_matrix(self, example_store):
        extractor = FeatureExtractor.for_attributes(["product_name"])
        matrix = extractor.extract_pairs(example_store, [("r1", "r2"), ("r1", "r3")])
        assert matrix.shape == (2, extractor.dimension)

    def test_extract_pairs_empty(self, example_store):
        extractor = FeatureExtractor.for_attributes(["product_name"])
        assert extractor.extract_pairs(example_store, []).shape == (0, extractor.dimension)

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor([])

    def test_feature_spec_name(self):
        assert FeatureSpec("name", "edit").name == "edit(name)"
