"""Tests for the ``repro.obs`` observability subsystem.

Three layers of guarantees:

* the primitives themselves — histogram bucketing, Prometheus text-format
  escaping and validity, span nesting and exception safety, snapshot
  merging for restart continuity;
* the no-op default — with observability off, every entry point is inert
  and instrumentation changes *nothing* about resolution output (the
  bit-identity property test, for both storage backends);
* the CLI surface — ``repro stats`` cost reports whose HIT count exactly
  matches the session's, and the ``-v``/``-q`` logging levels.
"""

import json
import logging
import sqlite3

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.config import WorkflowConfig
from repro.datasets.restaurant import RestaurantGenerator
from repro.obs.export import to_prometheus, validate_prometheus_text
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, MetricsSnapshot
from repro.obs.report import CostReport
from repro.streaming.session import StreamingResolver


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.deactivate()
    yield
    obs.deactivate()


def make_dataset(record_count=60, duplicate_pairs=10, seed=11):
    return RestaurantGenerator(
        record_count=record_count, duplicate_pairs=duplicate_pairs, seed=seed
    ).generate()


# ------------------------------------------------------------- primitives
class TestHistogram:
    def test_bucketing_lands_each_value_in_its_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = registry.snapshot()
        sample = snapshot.get("h")["samples"][0]
        # counts are per-bucket (not cumulative): (<=0.1, <=1, <=10, +Inf)
        assert sample["counts"] == [1, 2, 1, 1]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(56.05)

    def test_boundary_value_goes_to_lower_bucket(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        sample = registry.snapshot().get("h")["samples"][0]
        assert sample["counts"] == [1, 0, 0]  # le="1.0" is inclusive

    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(bound > 0 for bound in DEFAULT_BUCKETS)

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0,))
        histogram.observe(0.5, kind="a")
        histogram.observe(2.0, kind="b")
        snapshot = registry.snapshot()
        assert snapshot.histogram_count("h", kind="a") == 1
        assert snapshot.histogram_sum("h", kind="b") == pytest.approx(2.0)


class TestPrometheusExport:
    def test_export_of_live_registry_validates(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(3, phase="join")
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds", "a histogram").observe(0.02)
        text = to_prometheus(registry.snapshot())
        assert validate_prometheus_text(text) == []
        assert 'c_total{phase="join"} 3' in text
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1, path='a"b\\c\nd')
        text = to_prometheus(registry.snapshot())
        assert validate_prometheus_text(text) == []
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        text = to_prometheus(registry.snapshot())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_count 2" in text

    def test_validator_flags_malformed_text(self):
        assert validate_prometheus_text("# TYPE x banana\n")
        assert validate_prometheus_text("m{oops} 1\n")
        assert validate_prometheus_text('m{l="unterminated} 1\n')
        assert validate_prometheus_text("m not-a-number\n")

    def test_validator_accepts_empty_export(self):
        assert validate_prometheus_text(to_prometheus(MetricsSnapshot([]))) == []


class TestSpans:
    def test_nesting_recorded_in_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.activate(trace_path=str(trace))
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.deactivate()
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        spans = {event["name"]: event for event in events if event["type"] == "span"}
        assert spans["inner"]["depth"] == 1
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert "parent_id" not in spans["outer"]
        # a clean deactivate appends the final snapshot event
        assert events[-1]["type"] == "snapshot"

    def test_exception_propagates_and_is_counted(self):
        obs.activate()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("kept")
        snapshot = obs.snapshot()
        assert snapshot.counter_total("span_errors_total", span="boom") == 1
        assert snapshot.histogram_count("span_seconds", span="boom") == 1
        # the stack unwound: a new span is a root again
        with obs.span("after") as after:
            assert after.parent_id is None

    def test_span_durations_feed_span_seconds(self):
        obs.activate()
        with obs.span("timed"):
            pass
        snapshot = obs.snapshot()
        assert snapshot.histogram_count("span_seconds", span="timed") == 1
        assert snapshot.histogram_sum("span_seconds", span="timed") >= 0.0


class TestNoopDefault:
    def test_disabled_entry_points_are_inert(self):
        assert not obs.enabled()
        assert obs.snapshot() is None
        assert obs.runtime() is None
        obs.inc("c_total")
        obs.observe("h", 1.0)
        obs.set_gauge("g", 1.0)
        assert obs.merge_snapshot({"metrics": []}) is False
        with obs.span("nothing") as nothing:
            pass
        assert nothing is obs.span("still-nothing")  # shared no-op singleton

    def test_activate_is_idempotent(self):
        first = obs.activate()
        assert obs.activate() is first
        obs.inc("c_total", 2)
        assert obs.snapshot().counter_total("c_total") == 2


class TestMergeSnapshot:
    def test_counters_accumulate_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(5, kind="a")
        registry.gauge("g").set(1.0)
        stored = registry.snapshot().to_dict()

        obs.activate()
        obs.inc("c_total", 2, kind="a")
        obs.inc("c_total", 7, kind="b")
        assert obs.merge_snapshot(stored) is True
        snapshot = obs.snapshot()
        assert snapshot.counter_total("c_total", kind="a") == 7
        assert snapshot.counter_total("c_total", kind="b") == 7
        assert snapshot.gauge_value("g") == 1.0

    def test_histograms_add_elementwise(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        stored = registry.snapshot().to_dict()
        runtime = obs.activate()
        runtime.registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        obs.merge_snapshot(stored)
        sample = obs.snapshot().get("h")["samples"][0]
        assert sample["counts"] == [1, 1, 0]
        assert sample["count"] == 2

    def test_kind_conflict_is_skipped_not_fatal(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(1)
        stored = registry.snapshot().to_dict()
        runtime = obs.activate()
        runtime.registry.gauge("x").set(9.0)
        obs.merge_snapshot(stored)  # must not raise
        assert obs.snapshot().gauge_value("x") == 9.0


# ------------------------------------------------- bit-identity property
def _run_stream(dataset, tmp_path, backend, instrumented, tag):
    config_kwargs = dict(
        likelihood_threshold=0.35,
        vote_mode="per-pair",
        stream_batch_size=20,
        seed=7,
    )
    if backend == "sqlite":
        config_kwargs.update(
            storage_backend="sqlite",
            storage_path=str(tmp_path / f"{tag}.sqlite"),
        )
    if instrumented:
        config_kwargs.update(
            metrics_enabled=True,
            trace_path=str(tmp_path / f"{tag}.jsonl"),
        )
    config = WorkflowConfig(**config_kwargs)
    resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
    resolver.add_truth(dataset.ground_truth)
    records = list(dataset.store)
    result = None
    for start in range(0, len(records), 20):
        result = resolver.add_batch(records[start : start + 20])
    state = resolver.state_dict()
    state.pop("metrics", None)  # observational, allowed to differ
    # The config necessarily differs in the observability knobs themselves
    # (and the store path); everything resolution-relevant must not.
    state["config"] = {
        key: value
        for key, value in state["config"].items()
        if key not in _OBS_CONFIG_KEYS
    }
    resolver.storage.close()
    obs.deactivate()
    return result, state


#: Config fields allowed to differ between the instrumented and plain runs.
_OBS_CONFIG_KEYS = ("metrics_enabled", "trace_path", "storage_path")


def _assert_deep_equal(left, right, path=""):
    """Recursive equality that treats numpy arrays elementwise."""
    import numpy as np

    if isinstance(left, dict) and isinstance(right, dict):
        assert set(left) == set(right), f"{path}: key sets differ"
        for key in left:
            _assert_deep_equal(left[key], right[key], f"{path}.{key}")
    elif isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        assert len(left) == len(right), f"{path}: lengths differ"
        for index, (a, b) in enumerate(zip(left, right)):
            _assert_deep_equal(a, b, f"{path}[{index}]")
    elif isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        assert np.array_equal(left, right), f"{path}: arrays differ"
    else:
        assert left == right, f"{path}: {left!r} != {right!r}"


def _dump_sqlite(path):
    """Every row of every table, minus the observational metrics/config meta."""
    connection = sqlite3.connect(path)
    try:
        tables = [
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table' ORDER BY name"
            )
        ]
        dump = {}
        for table in tables:
            rows = connection.execute(f"SELECT * FROM {table}").fetchall()
            if table == "meta":
                normalized = []
                for key, value in rows:
                    if key == "metrics":
                        continue
                    if key == "config":
                        payload = json.loads(value)
                        for field in _OBS_CONFIG_KEYS:
                            payload.pop(field, None)
                        value = json.dumps(payload, sort_keys=True)
                    normalized.append((key, value))
                rows = normalized
            dump[table] = sorted(map(repr, rows))
        return dump
    finally:
        connection.close()


@pytest.mark.parametrize("backend", ("memory", "sqlite"))
def test_instrumentation_leaves_resolution_bit_identical(tmp_path, backend):
    dataset = make_dataset()
    plain_result, plain_state = _run_stream(dataset, tmp_path, backend, False, "plain")
    inst_result, inst_state = _run_stream(dataset, tmp_path, backend, True, "inst")

    assert set(inst_result.matches) == set(plain_result.matches)
    assert inst_result.posteriors == plain_result.posteriors
    assert inst_result.ranked_pairs == plain_result.ranked_pairs
    assert inst_result.hit_count == plain_result.hit_count
    assert inst_result.cost == plain_result.cost
    _assert_deep_equal(inst_state, plain_state)
    if backend == "sqlite":
        assert _dump_sqlite(tmp_path / "inst.sqlite") == _dump_sqlite(
            tmp_path / "plain.sqlite"
        )


# ------------------------------------------------------------ cost report
def test_stats_hit_count_matches_session_exactly(tmp_path):
    dataset = make_dataset()
    config = WorkflowConfig(
        likelihood_threshold=0.35,
        vote_mode="per-pair",
        stream_batch_size=20,
        storage_backend="sqlite",
        storage_path=str(tmp_path / "store.sqlite"),
        metrics_enabled=True,
        trace_path=str(tmp_path / "trace.jsonl"),
        seed=7,
    )
    resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
    resolver.add_truth(dataset.ground_truth)
    records = list(dataset.store)
    result = None
    for start in range(0, len(records), 20):
        result = resolver.add_batch(records[start : start + 20])
    snapshot = obs.snapshot()
    resolver.storage.close()
    obs.deactivate()
    assert result.hit_count > 0

    live = CostReport.from_snapshot(snapshot)
    store = CostReport.from_store(str(tmp_path / "store.sqlite"))
    trace = CostReport.from_trace(str(tmp_path / "trace.jsonl"))
    for report in (live, store, trace):
        assert report.hits_issued == result.hit_count
        assert report.assignments == result.assignment_count
        assert report.votes > 0
        assert report.crowd_cost_dollars == pytest.approx(result.cost)
    assert store.machine_seconds is not None and store.machine_seconds > 0


# -------------------------------------------------------------------- CLI
def test_cli_stream_metrics_export_and_stats(tmp_path, capsys):
    checkpoint = tmp_path / "session"
    prom = tmp_path / "metrics.prom"
    trace = tmp_path / "trace.jsonl"
    exit_code = cli_main([
        "resolve-stream", "--dataset", "paper-example", "--batch-size", "3",
        "--storage-backend", "sqlite", "--checkpoint-dir", str(checkpoint),
        "--metrics", "--trace", str(trace), "--metrics-out", str(prom),
    ])
    out = capsys.readouterr().out
    assert exit_code == 0
    hit_line = next(line for line in out.splitlines() if line.startswith("HITs"))
    session_hits = int(hit_line.split(":")[1].split("/")[0])
    assert validate_prometheus_text(prom.read_text()) == []

    for source_args in (
        ["--checkpoint-dir", str(checkpoint)],
        ["--trace", str(trace)],
    ):
        assert cli_main(["stats"] + source_args) == 0
        rendered = capsys.readouterr().out
        assert f"HITs issued            : {session_hits}" in rendered

    assert cli_main(["stats", "--checkpoint-dir", str(checkpoint), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["hits_issued"] == session_hits
    assert payload["votes"] > 0


def test_cli_stats_errors(tmp_path, capsys):
    assert cli_main(["stats"]) == 2
    assert "needs --store" in capsys.readouterr().err
    assert cli_main(["stats", "--store", str(tmp_path / "missing.sqlite")]) == 2
    assert capsys.readouterr().err.startswith("error:")


def test_cli_quiet_suppresses_info(capsys):
    assert cli_main(["-q", "threshold-table", "--dataset", "paper-example"]) == 0
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == ""


def test_cli_verbose_surfaces_library_debug(capsys):
    assert cli_main([
        "-v", "resolve-stream", "--dataset", "paper-example", "--batch-size", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "records arriving" in out  # session.py debug line


def test_cli_errors_go_to_stderr_not_stdout(capsys):
    exit_code = cli_main([
        "resolve-stream", "--dataset", "paper-example", "--batch-size", "3",
        "--retract", "no-such-record",
    ])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "error:" in captured.err
    assert "error:" not in captured.out


def test_library_loggers_never_touch_root(capsys):
    # _configure_logging must scope handlers to the "repro" logger only.
    cli_main(["threshold-table", "--dataset", "paper-example"])
    capsys.readouterr()
    assert logging.getLogger().handlers == logging.getLogger().handlers  # no raise
    assert not logging.getLogger("repro").propagate
    assert logging.getLogger().handlers == [] or all(
        handler not in logging.getLogger("repro").handlers
        for handler in logging.getLogger().handlers
    )
