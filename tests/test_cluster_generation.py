"""Tests for cluster-based HIT generation: baselines, approximation, two-tiered."""

import pytest

from repro.graph.graph import Graph
from repro.hit.approximation import build_goldschmidt_sequence, cliques_from_sequence
from repro.hit.base import validate_cluster_cover
from repro.hit.generator import available_generators, get_cluster_generator
from repro.hit.partitioning import coverage_report, partition_all, partition_large_component
from repro.hit.two_tiered import TwoTieredClusterGenerator
from repro.records.pairs import PairSet, RecordPair
from repro.simjoin.likelihood import SimJoinLikelihood

ALL_GENERATORS = ["random", "bfs", "dfs", "approximation", "two-tiered"]


def chain_pairs(length):
    """A path graph r0-r1-...-r(length)."""
    pairs = PairSet()
    for index in range(length):
        pairs.add(RecordPair(f"v{index:03d}", f"v{index + 1:03d}", likelihood=0.5))
    return pairs


class TestGeneratorRegistry:
    def test_all_generators_registered(self):
        assert set(ALL_GENERATORS) <= set(available_generators())

    def test_unknown_generator(self):
        with pytest.raises(KeyError):
            get_cluster_generator("nope", cluster_size=4)

    def test_cluster_size_validation(self):
        with pytest.raises(ValueError):
            get_cluster_generator("two-tiered", cluster_size=1)


class TestAllGeneratorsProduceValidCovers:
    @pytest.mark.parametrize("name", ALL_GENERATORS)
    def test_paper_example_cover(self, name, example_pairs):
        generator = get_cluster_generator(name, cluster_size=4)
        batch = generator.generate(example_pairs)
        assert batch.is_valid_cover()
        assert batch.max_hit_size() <= 4
        validate_cluster_cover(batch.hits, example_pairs, cluster_size=4)

    @pytest.mark.parametrize("name", ALL_GENERATORS)
    def test_chain_graph_cover(self, name):
        pairs = chain_pairs(37)
        generator = get_cluster_generator(name, cluster_size=5)
        batch = generator.generate(pairs)
        assert batch.is_valid_cover()
        assert batch.max_hit_size() <= 5

    @pytest.mark.parametrize("name", ALL_GENERATORS)
    def test_small_restaurant_cover(self, name, small_restaurant):
        pairs = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.3)
        generator = get_cluster_generator(name, cluster_size=6)
        batch = generator.generate(pairs)
        assert batch.is_valid_cover()
        assert batch.max_hit_size() <= 6

    @pytest.mark.parametrize("name", ALL_GENERATORS)
    def test_empty_pair_set(self, name):
        batch = get_cluster_generator(name, cluster_size=4).generate(PairSet())
        assert batch.hit_count == 0
        assert batch.is_valid_cover()

    @pytest.mark.parametrize("name", ALL_GENERATORS)
    def test_single_pair(self, name):
        pairs = PairSet([RecordPair("x", "y", likelihood=0.9)])
        batch = get_cluster_generator(name, cluster_size=4).generate(pairs)
        assert batch.hit_count == 1
        assert batch.is_valid_cover()


class TestTwoTiered:
    def test_optimal_on_paper_example(self, example_pairs):
        """Section 3.2: three cluster-based HITs suffice for the ten pairs (k=4)."""
        generator = TwoTieredClusterGenerator(cluster_size=4)
        batch = generator.generate(example_pairs)
        assert batch.hit_count == 3
        assert batch.is_valid_cover()

    def test_beats_or_matches_baselines(self, small_restaurant):
        pairs = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.2)
        counts = {}
        for name in ALL_GENERATORS:
            batch = get_cluster_generator(name, cluster_size=8).generate(pairs)
            assert batch.is_valid_cover()
            counts[name] = batch.hit_count
        assert counts["two-tiered"] == min(counts.values())

    def test_stats_populated(self, example_pairs):
        generator = TwoTieredClusterGenerator(cluster_size=4)
        generator.generate(example_pairs)
        stats = generator.last_stats
        assert stats is not None
        assert stats.small_components == 1
        assert stats.large_components == 1
        assert stats.packed_hits == 3

    @pytest.mark.parametrize("packing_method", ["ffd", "branch-and-bound", "column-generation"])
    def test_all_packing_methods_valid(self, packing_method, example_pairs):
        generator = TwoTieredClusterGenerator(cluster_size=4, packing_method=packing_method)
        batch = generator.generate(example_pairs)
        assert batch.is_valid_cover()
        assert batch.hit_count == 3

    def test_larger_cluster_size_never_needs_more_hits(self, small_restaurant):
        pairs = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.3)
        count_small = TwoTieredClusterGenerator(cluster_size=5).generate(pairs).hit_count
        count_large = TwoTieredClusterGenerator(cluster_size=10).generate(pairs).hit_count
        assert count_large <= count_small


class TestPartitioning:
    def test_example3_partition(self):
        """Reproduce Example 3: the LCC of Figure 5 partitions into 3 SCCs."""
        graph = Graph.from_edges(
            [
                ("r1", "r2"), ("r1", "r7"), ("r2", "r7"), ("r2", "r3"), ("r3", "r4"),
                ("r3", "r5"), ("r4", "r5"), ("r4", "r6"), ("r4", "r7"),
            ]
        )
        component = graph.vertices()
        sccs = partition_large_component(graph, component, cluster_size=4)
        assert len(sccs) == 3
        as_sets = [frozenset(scc) for scc in sccs]
        assert frozenset({"r3", "r4", "r5", "r6"}) in as_sets
        assert frozenset({"r1", "r2", "r3", "r7"}) in as_sets
        assert frozenset({"r4", "r7"}) in as_sets

    def test_first_scc_grown_in_paper_order(self):
        """Figure 8: the first SCC is seeded at r4 and grows r6, r5, r3."""
        graph = Graph.from_edges(
            [
                ("r1", "r2"), ("r1", "r7"), ("r2", "r7"), ("r2", "r3"), ("r3", "r4"),
                ("r3", "r5"), ("r4", "r5"), ("r4", "r6"), ("r4", "r7"),
            ]
        )
        sccs = partition_large_component(graph, graph.vertices(), cluster_size=4)
        assert sccs[0] == ["r4", "r6", "r5", "r3"]

    def test_partition_covers_all_edges(self, small_restaurant):
        pairs = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.2)
        graph = Graph.from_pair_set(pairs)
        from repro.graph.components import split_components_by_size

        small, large = split_components_by_size(graph, 5)
        sccs = partition_all(graph, large, 5)
        for component in large:
            local = [scc for scc in sccs if set(scc) <= set(component)]
            report = coverage_report(graph, component, local)
            assert report["uncovered"] == 0

    def test_scc_sizes_bounded(self, small_restaurant):
        pairs = SimJoinLikelihood().estimate(small_restaurant.store, min_likelihood=0.2)
        graph = Graph.from_pair_set(pairs)
        from repro.graph.components import split_components_by_size

        _small, large = split_components_by_size(graph, 4)
        for component in large:
            for scc in partition_large_component(graph, component, 4):
                assert 2 <= len(scc) <= 4

    def test_tie_break_rules(self):
        graph = Graph.from_edges([("a", "b"), ("a", "c"), ("b", "c"), ("c", "d"), ("d", "e")])
        for rule in ("min-outdegree", "max-outdegree", "lexical"):
            sccs = partition_large_component(graph, graph.vertices(), 3, tie_break=rule)
            covered = set()
            for scc in sccs:
                covered.update(graph.edges_within(scc))
            assert covered == graph.edge_keys()
        with pytest.raises(ValueError):
            partition_large_component(graph, graph.vertices(), 3, tie_break="nope")

    def test_invalid_cluster_size(self):
        graph = Graph.from_edges([("a", "b")])
        with pytest.raises(ValueError):
            partition_large_component(graph, graph.vertices(), 1)


class TestApproximation:
    def test_sequence_contains_all_vertices_and_edges(self, example_pairs):
        graph = Graph.from_pair_set(example_pairs)
        sequence = build_goldschmidt_sequence(graph)
        vertices = [element for element in sequence if isinstance(element, str)]
        edges = [element for element in sequence if isinstance(element, tuple)]
        assert sorted(vertices) == sorted(graph.vertices())
        assert sorted(edges) == sorted(graph.edges())

    def test_window_property_holds(self, example_pairs):
        """Any k-1 consecutive SEQ elements touch at most k distinct vertices."""
        graph = Graph.from_pair_set(example_pairs)
        sequence = build_goldschmidt_sequence(graph)
        k = 4
        for start in range(len(sequence) - (k - 1) + 1):
            window = sequence[start : start + k - 1]
            touched = set()
            for element in window:
                if isinstance(element, tuple):
                    touched.update(element)
            assert len(touched) <= k

    def test_cliques_cover_all_edges(self, example_pairs):
        graph = Graph.from_pair_set(example_pairs)
        sequence = build_goldschmidt_sequence(graph)
        cliques = cliques_from_sequence(sequence, cluster_size=4)
        covered = set()
        for clique in cliques:
            covered.update(graph.edges_within(clique))
        assert covered == graph.edge_keys()

    def test_generator_worse_than_two_tiered_on_example(self, example_pairs):
        approx = get_cluster_generator("approximation", cluster_size=4).generate(example_pairs)
        two_tiered = get_cluster_generator("two-tiered", cluster_size=4).generate(example_pairs)
        assert approx.hit_count >= two_tiered.hit_count


class TestBaselineBehaviour:
    def test_random_is_seeded(self, example_pairs):
        a = get_cluster_generator("random", cluster_size=4, seed=3).generate(example_pairs)
        b = get_cluster_generator("random", cluster_size=4, seed=3).generate(example_pairs)
        assert [hit.records for hit in a.hits] == [hit.records for hit in b.hits]

    def test_bfs_groups_connected_records(self):
        # A 5-star: BFS from the centre covers all edges in one HIT of size 6.
        pairs = PairSet([RecordPair("c", f"l{i}", likelihood=0.5) for i in range(5)])
        batch = get_cluster_generator("bfs", cluster_size=6).generate(pairs)
        assert batch.hit_count == 1

    def test_dfs_on_path_uses_more_hits_than_cluster_capacity_suggests(self):
        pairs = chain_pairs(20)
        batch = get_cluster_generator("dfs", cluster_size=5).generate(pairs)
        # A path of 21 vertices / 20 edges needs at least 5 HITs of size 5.
        assert batch.hit_count >= 5
        assert batch.is_valid_cover()
