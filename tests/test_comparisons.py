"""Tests for the Section-6 comparison-count model."""

import pytest

from repro.hit.base import ClusterBasedHIT, PairBasedHIT
from repro.hit.comparisons import (
    all_duplicate_comparisons,
    cluster_hit_comparisons,
    cluster_hit_comparisons_bounds,
    comparisons_for_entity_sizes,
    entity_partition,
    no_duplicate_comparisons,
    pair_hit_comparisons,
)


class TestPairComparisons:
    def test_pair_hit_comparisons_equals_pair_count(self):
        hit = PairBasedHIT("h1", (("a", "b"), ("c", "d"), ("e", "f")))
        assert pair_hit_comparisons(hit) == 3


class TestEntityPartition:
    def test_groups_by_transitive_matches(self):
        entities = entity_partition(["a", "b", "c", "d"], [("a", "b"), ("b", "c")])
        assert sorted(len(entity) for entity in entities) == [1, 3]
        assert frozenset({"a", "b", "c"}) in {frozenset(entity) for entity in entities}

    def test_matches_outside_hit_ignored(self):
        entities = entity_partition(["a", "b"], [("a", "z")])
        assert sorted(len(entity) for entity in entities) == [1, 1]


class TestEquationOne:
    def test_no_duplicates_extreme(self):
        # n entities of size 1 -> n*(n-1)/2 comparisons.
        assert comparisons_for_entity_sizes([1, 1, 1, 1]) == no_duplicate_comparisons(4) == 6

    def test_all_duplicates_extreme(self):
        # One entity with n records -> n-1 comparisons.
        assert comparisons_for_entity_sizes([4]) == all_duplicate_comparisons(4) == 3

    def test_example4(self, example_matches):
        """Example 4: HIT {r1, r2, r3, r7} needs only three comparisons."""
        hit = ClusterBasedHIT("h", ("r1", "r2", "r3", "r7"))
        assert cluster_hit_comparisons(hit, example_matches, order="as-given") == 3

    def test_order_dependence(self):
        """Equation 2: identifying small entities first minimises comparisons."""
        hit = ClusterBasedHIT("h", tuple(f"r{i}" for i in range(6)))
        # r0-r1-r2 one entity, r3-r4 another, r5 alone.
        matches = [("r0", "r1"), ("r1", "r2"), ("r3", "r4")]
        best, worst = cluster_hit_comparisons_bounds(hit, matches)
        assert best <= cluster_hit_comparisons(hit, matches, order="as-given") <= worst
        assert best < worst

    def test_best_order_is_descending_entity_size(self):
        hit = ClusterBasedHIT("h", tuple(f"r{i}" for i in range(5)))
        matches = [("r0", "r1"), ("r1", "r2"), ("r0", "r2")]
        # Entities: {r0,r1,r2} of size 3 plus singletons {r3} and {r4}.
        # Equation 2 is minimised by identifying the largest entity first.
        assert cluster_hit_comparisons(hit, matches, order="best") == comparisons_for_entity_sizes([3, 1, 1])
        assert cluster_hit_comparisons(hit, matches, order="worst") == comparisons_for_entity_sizes([1, 1, 3])
        assert comparisons_for_entity_sizes([3, 1, 1]) < comparisons_for_entity_sizes([1, 1, 3])

    def test_invalid_order(self):
        hit = ClusterBasedHIT("h", ("a", "b"))
        with pytest.raises(ValueError):
            cluster_hit_comparisons(hit, [], order="nope")

    def test_cluster_with_more_matches_needs_fewer_comparisons(self):
        records = tuple(f"r{i}" for i in range(8))
        hit = ClusterBasedHIT("h", records)
        no_matches = cluster_hit_comparisons(hit, [], order="as-given")
        all_matches = cluster_hit_comparisons(
            hit, [(records[0], r) for r in records[1:]] + [(records[1], records[2])],
            order="as-given",
        )
        # Transitive closure makes all 8 records one entity.
        assert all_matches < no_matches
        assert no_matches == 28
        assert all_matches == 7
