"""Tests for the asynchronous fault-tolerant crowd layer.

The central contract: because faults perturb *when* votes arrive but never
*what* they say (content comes from the deterministic per-pair vote
oracle), an async session's final state is bit-identical to the
synchronous baseline for **any** seeded fault schedule with eventual
delivery — out-of-order arrival, worker abandonment, duplicate
deliveries, worker churn and publish-burst backlogs included.  On top of
that, the lifecycle machinery itself must behave: retries back off and
eventually reissue at a cost, duplicates are dropped exactly once,
backpressure bounds the in-flight window, and the whole platform state
round-trips through JSON for crash recovery.

Equivalence caveat exercised here deliberately: Dawid-Skene aggregation
with *component* scope is not fault-order independent (EM shares confusion
matrices across whatever set of pairs aggregates together, and delayed
completions regroup that set), so the fault-schedule equivalence
properties run under majority aggregation (any scope) and Dawid-Skene
with *global* scope — the same classes for which streaming == batch holds.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import fault_plans

from repro.core.config import WorkflowConfig
from repro.crowd import (
    AsyncCrowdPlatform,
    BackpressureError,
    FaultPlan,
    SimulatedCrowdPlatform,
    Worker,
    WorkerPool,
)
from repro.crowd.latency import LatencyModel
from repro.crowd.worker import RELIABLE
from repro.datasets.restaurant import RestaurantGenerator
from repro.hit.base import HITBatch, PairBasedHIT
from repro.records.pairs import canonical_pair
from repro.streaming import StreamingResolver

HOSTILE_PLAN = dict(
    seed=13,
    delay_ticks_min=0,
    delay_ticks_max=5,
    drop_probability=0.4,
    duplicate_probability=0.3,
    duplicate_delay_ticks=2,
    reorder_probability=0.5,
    reorder_window_ticks=4,
    churn_probability=0.2,
    burst_every=2,
    burst_backlog_ticks=4,
)


def make_platform(**overrides):
    base = dict(vote_mode="per-pair", seed=5)
    base.update(overrides)
    return SimulatedCrowdPlatform(**base)


def pair_batch(pairs, pairs_per_hit=4):
    keys = sorted(canonical_pair(a, b) for a, b in pairs)
    hits = [
        PairBasedHIT(f"h{i}", tuple(keys[start : start + pairs_per_hit]))
        for i, start in enumerate(range(0, len(keys), pairs_per_hit))
    ]
    return HITBatch(
        hit_type="pair", hits=hits, candidate_pairs=set(keys), cluster_size=2
    )


def grid_pairs(count):
    return [(f"r{i:03d}", f"s{i:03d}") for i in range(count)]


def make_dataset(record_count=60, duplicate_pairs=10, seed=23):
    return RestaurantGenerator(
        record_count=record_count, duplicate_pairs=duplicate_pairs, seed=seed
    ).generate()


def make_config(**overrides):
    base = dict(
        likelihood_threshold=0.35, vote_mode="per-pair", aggregation="majority"
    )
    base.update(overrides)
    return WorkflowConfig(**base)


def run_session(config, dataset, batch_size=20):
    records = list(dataset.store)
    resolver = StreamingResolver(config=config)
    resolver.add_truth(dataset.ground_truth)
    for start in range(0, len(records), batch_size):
        resolver.add_batch(records[start : start + batch_size])
    resolver.flush()
    return resolver


def assert_same_final_state(sync, other):
    snap_sync, snap_other = sync.snapshot(), other.snapshot()
    assert snap_other.matches == snap_sync.matches
    assert snap_other.posteriors == snap_sync.posteriors
    assert snap_other.ranked_pairs == snap_sync.ranked_pairs
    assert snap_other.hit_count == snap_sync.hit_count
    assert snap_other.cost >= snap_sync.cost  # reissues can only add cost


# ---------------------------------------------------------------- fault plan
class TestFaultPlan:
    def test_fate_is_deterministic(self):
        plan_a = FaultPlan(**HOSTILE_PLAN)
        plan_b = FaultPlan(**HOSTILE_PLAN)
        for attempt in range(4):
            assert plan_a.fate("p0:h1", f"p0:h1/s0/a{attempt}", attempt, 0) == \
                plan_b.fate("p0:h1", f"p0:h1/s0/a{attempt}", attempt, 0)

    def test_different_seeds_diverge(self):
        fates_a = [FaultPlan(seed=1, drop_probability=0.5).fate("h", f"a{i}", 0, 0)
                   for i in range(20)]
        fates_b = [FaultPlan(seed=2, drop_probability=0.5).fate("h", f"a{i}", 0, 0)
                   for i in range(20)]
        assert fates_a != fates_b

    def test_eventual_delivery_bound(self):
        """At or beyond max_faulty_attempts every fate is a prompt delivery."""
        plan = FaultPlan(seed=3, drop_probability=1.0, duplicate_probability=1.0,
                         max_faulty_attempts=2)
        fate = plan.fate("h", "h/s0/a2", 2, 0)
        assert not fate.abandoned and not fate.duplicate
        assert fate.delay_ticks == plan.delay_ticks_min

    def test_burst_delays_every_nth_publish(self):
        plan = FaultPlan(seed=4, delay_ticks_min=0, delay_ticks_max=0,
                         burst_every=2, burst_backlog_ticks=7)
        calm = plan.fate("h", "a", 0, publish_index=0)
        burst = plan.fate("h", "a", 0, publish_index=1)
        assert burst.delay_ticks == calm.delay_ticks + 7

    def test_json_round_trip(self):
        plan = FaultPlan(**HOSTILE_PLAN)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        import json

        plan = FaultPlan(seed=9, drop_probability=0.25)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_file(str(path)) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"seed": 1, "drop_rate": 0.5})

    @pytest.mark.parametrize("bad", [
        dict(drop_probability=1.5),
        dict(duplicate_probability=-0.1),
        dict(delay_ticks_min=3, delay_ticks_max=1),
        dict(duplicate_delay_ticks=-1),
        dict(burst_every=-1),
        dict(max_faulty_attempts=0),
    ])
    def test_parameter_validation(self, bad):
        with pytest.raises(ValueError):
            FaultPlan(**bad)


# --------------------------------------------------------- platform lifecycle
class TestAsyncPlatform:
    def test_requires_per_pair_mode(self):
        with pytest.raises(ValueError, match="per-pair"):
            AsyncCrowdPlatform(SimulatedCrowdPlatform(seed=1))

    @pytest.mark.parametrize("bad", [
        dict(vote_timeout=0),
        dict(max_inflight_hits=-1),
        dict(backpressure_policy="drop"),
        dict(max_retries=-1),
        dict(backoff_ticks=-1),
    ])
    def test_parameter_validation(self, bad):
        with pytest.raises(ValueError):
            AsyncCrowdPlatform(make_platform(), **bad)

    def test_publish_returns_a_receipt_not_votes(self):
        crowd = AsyncCrowdPlatform(make_platform())
        receipt = crowd.publish(pair_batch(grid_pairs(6)), true_matches=set())
        assert receipt.hit_count == 2
        assert receipt.votes == []
        assert receipt.assignment_seconds == []
        assert receipt.cost == pytest.approx(2 * 3 * 0.025)
        assert crowd.open_hit_count == 2

    def test_no_fault_settle_equals_sync_votes(self):
        pairs = grid_pairs(10)
        truth = set(pairs[:3])
        sync = make_platform().publish(
            pair_batch(pairs), true_matches=truth
        )
        crowd = AsyncCrowdPlatform(make_platform())
        crowd.publish(pair_batch(pairs), true_matches=truth)
        async_votes = [
            vote for delivery in crowd.settle() for vote in delivery.votes
        ]
        assert sorted(async_votes) == sorted(sync.votes)

    def test_hostile_plan_settle_equals_sync_votes(self):
        pairs = grid_pairs(16)
        truth = set(pairs[::3])
        sync = make_platform().publish(pair_batch(pairs), true_matches=truth)
        crowd = AsyncCrowdPlatform(
            make_platform(), vote_timeout=3, max_retries=2,
            fault_plan=FaultPlan(**HOSTILE_PLAN),
        )
        crowd.publish(pair_batch(pairs), true_matches=truth)
        async_votes = [
            vote for delivery in crowd.settle() for vote in delivery.votes
        ]
        assert sorted(async_votes) == sorted(sync.votes)
        assert crowd.timeouts > 0 and crowd.retries > 0

    def test_duplicates_are_dropped_exactly_once(self):
        plan = FaultPlan(seed=6, duplicate_probability=1.0,
                         delay_ticks_min=0, delay_ticks_max=0)
        crowd = AsyncCrowdPlatform(make_platform(), fault_plan=plan)
        crowd.publish(pair_batch(grid_pairs(8)), true_matches=set())
        deliveries = crowd.settle()
        assert crowd.duplicates_dropped > 0
        # One delivery per (hit, slot) despite every attempt duplicating.
        slots = [(d.hit_id, d.slot) for d in deliveries]
        assert len(slots) == len(set(slots))

    def test_exhausted_retries_become_paid_reissues(self):
        plan = FaultPlan(seed=7, drop_probability=0.9, max_faulty_attempts=6)
        crowd = AsyncCrowdPlatform(
            make_platform(), vote_timeout=1, max_retries=1, backoff_ticks=0,
            fault_plan=plan,
        )
        crowd.publish(pair_batch(grid_pairs(12)), true_matches=set())
        crowd.settle()
        assert crowd.reissued > 0
        extra = crowd.take_extra_cost()
        assert extra == pytest.approx(
            crowd.reissued * crowd.inner.pricing.cost_per_assignment
        )
        assert crowd.take_extra_cost() == 0.0  # collection resets

    def test_shed_policy_raises_when_window_full(self):
        crowd = AsyncCrowdPlatform(
            make_platform(), max_inflight_hits=2, backpressure_policy="shed"
        )
        crowd.publish(pair_batch(grid_pairs(8)), true_matches=set())
        with pytest.raises(BackpressureError):
            crowd.publish(pair_batch(grid_pairs(8)), true_matches=set())
        # force bypasses the window (flush-time backlog settlement).
        crowd.publish(pair_batch(grid_pairs(8)), true_matches=set(), force=True)

    def test_block_policy_drains_the_window(self):
        crowd = AsyncCrowdPlatform(
            make_platform(), max_inflight_hits=2, backpressure_policy="block"
        )
        crowd.publish(pair_batch(grid_pairs(8)), true_matches=set())
        crowd.publish(pair_batch(grid_pairs(8)), true_matches=set())
        assert crowd.open_hit_count <= 2
        assert crowd.ready_count > 0  # blocking advanced the clock

    def test_state_round_trips_mid_flight(self):
        plan = FaultPlan(**HOSTILE_PLAN)
        crowd = AsyncCrowdPlatform(make_platform(), vote_timeout=3,
                                   fault_plan=plan)
        crowd.publish(pair_batch(grid_pairs(12)), true_matches=set())
        crowd.poll(2)  # some delivered, some pending, some retried
        twin = AsyncCrowdPlatform(make_platform(), vote_timeout=3,
                                  fault_plan=plan)
        twin.load_state_dict(crowd.state_dict())
        left = [v for d in crowd.settle() for v in d.votes]
        right = [v for d in twin.settle() for v in d.votes]
        assert sorted(left) == sorted(right)
        assert crowd.retries == twin.retries
        assert crowd.duplicates_dropped == twin.duplicates_dropped


# ------------------------------------------------- eligibility cache (bugfix)
class TestWorkerEligibilityCache:
    def test_eligible_list_is_cached_between_publishes(self):
        platform = make_platform()
        assert platform._eligible is platform._eligible  # same object, no rescan

    def test_pool_churn_invalidates_the_cache(self):
        """Regression: eligibility was recomputed per publish; now it is
        cached per (pool version) and must refresh when the pool churns."""
        platform = make_platform()
        before = platform._eligible
        platform.pool.add_worker(Worker("late-joiner", RELIABLE, seed=99))
        after = platform._eligible
        assert after is not before
        assert len(after) == len(before) + 1
        removed = platform.pool.remove_worker("late-joiner")
        assert removed.worker_id == "late-joiner"
        assert len(platform._eligible) == len(before)

    def test_remove_refuses_the_last_worker(self):
        pool = WorkerPool([Worker("only", RELIABLE, seed=1)])
        with pytest.raises(ValueError):
            pool.remove_worker("only")

    def test_remove_unknown_worker_raises(self):
        pool = WorkerPool.build(size=4, seed=2)
        with pytest.raises(KeyError):
            pool.remove_worker("nobody")

    def test_effective_workers_is_memoized(self):
        model = LatencyModel()
        first = model.effective_workers("pair", pairs_per_hit=8)
        assert model._effective_workers_cache  # populated
        assert model.effective_workers("pair", pairs_per_hit=8) == first

    def test_memo_key_includes_the_pool_size(self):
        model = LatencyModel()
        base = model.effective_workers("pair", pairs_per_hit=8)
        model.pool_size = model.pool_size * 2
        assert model.effective_workers("pair", pairs_per_hit=8) != base


# -------------------------------------------------------- session equivalence
class TestSessionEquivalence:
    def test_no_fault_async_equals_sync(self):
        dataset = make_dataset()
        sync = run_session(make_config(), dataset)
        async_session = run_session(make_config(crowd_mode="async"), dataset)
        assert_same_final_state(sync, async_session)
        assert async_session.snapshot().cost == sync.snapshot().cost

    @pytest.mark.parametrize("aggregation,scope", [
        ("majority", "component"),
        ("majority", "global"),
        ("dawid-skene", "global"),
    ])
    def test_hostile_plan_async_equals_sync(self, aggregation, scope):
        dataset = make_dataset()
        kwargs = dict(aggregation=aggregation, streaming_aggregation_scope=scope)
        sync = run_session(make_config(**kwargs), dataset)
        async_session = run_session(
            make_config(crowd_mode="async", vote_timeout=3, crowd_max_retries=2,
                        fault_plan=HOSTILE_PLAN, **kwargs),
            dataset,
        )
        assert_same_final_state(sync, async_session)
        assert not async_session._inflight_rounds
        assert not async_session._starved_pairs

    def test_shed_backpressure_still_converges(self):
        """Shedding re-packs deferred pairs into later HIT batches, so the
        operational metrics (HIT count, base cost) may differ from sync —
        but the votes per pair, and hence matches and posteriors, must not."""
        dataset = make_dataset()
        sync = run_session(make_config(), dataset)
        shed = run_session(
            make_config(crowd_mode="async", max_inflight_hits=2,
                        backpressure_policy="shed", fault_plan=HOSTILE_PLAN,
                        vote_timeout=3),
            dataset,
        )
        snap_sync, snap_shed = sync.snapshot(), shed.snapshot()
        assert snap_shed.matches == snap_sync.matches
        assert snap_shed.posteriors == snap_sync.posteriors
        assert snap_shed.ranked_pairs == snap_sync.ranked_pairs

    def test_block_backpressure_still_converges(self):
        dataset = make_dataset()
        sync = run_session(make_config(), dataset)
        block = run_session(
            make_config(crowd_mode="async", max_inflight_hits=2,
                        backpressure_policy="block", fault_plan=HOSTILE_PLAN,
                        vote_timeout=3),
            dataset,
        )
        assert_same_final_state(sync, block)

    def test_async_config_requires_per_pair_votes(self):
        with pytest.raises(ValueError):
            WorkflowConfig(crowd_mode="async", vote_mode="sequential")

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=fault_plans(), batch_size=st.sampled_from((7, 20, 45)))
    def test_property_async_equals_sync_for_any_fault_schedule(
        self, plan, batch_size
    ):
        """The tentpole property: any seeded fault schedule with eventual
        delivery settles to the synchronous baseline, bit-identically."""
        dataset = make_dataset(record_count=40, duplicate_pairs=8, seed=29)
        sync = run_session(make_config(), dataset, batch_size=batch_size)
        async_session = run_session(
            make_config(crowd_mode="async", vote_timeout=3, crowd_max_retries=2,
                        fault_plan=plan.to_dict()),
            dataset,
            batch_size=batch_size,
        )
        assert_same_final_state(sync, async_session)
