"""Tests for the bottom-tier packing solvers."""

import pytest

from repro.hit.packing import (
    PackingSolution,
    branch_and_bound_packing,
    column_generation_packing,
    first_fit_decreasing,
    pack_components,
    size_lower_bound,
)

SOLVERS = [first_fit_decreasing, branch_and_bound_packing, column_generation_packing]


class TestLowerBound:
    def test_size_lower_bound(self):
        assert size_lower_bound([4, 4, 2, 2], 4) == 3
        assert size_lower_bound([], 4) == 0
        assert size_lower_bound([1, 1, 1], 10) == 1


class TestSolversSharedBehaviour:
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_feasible_on_paper_example(self, solver):
        """Sizes {4, 4, 2, 2} with capacity 4 pack into exactly 3 HITs."""
        solution = solver([4, 4, 2, 2], 4)
        assert solution.is_feasible()
        assert solution.bin_count == 3

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_feasible_on_mixed_sizes(self, solver):
        sizes = [2, 3, 5, 4, 2, 2, 3, 6, 1, 1, 7, 2]
        solution = solver(sizes, 8)
        assert solution.is_feasible()
        assert solution.bin_count >= size_lower_bound(sizes, 8)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_single_item(self, solver):
        solution = solver([3], 5)
        assert solution.bin_count == 1
        assert solution.is_feasible()

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_empty_input(self, solver):
        solution = solver([], 5)
        assert solution.bin_count == 0
        assert solution.is_feasible()

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_item_too_large_rejected(self, solver):
        with pytest.raises(ValueError):
            solver([6], 5)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_invalid_sizes_rejected(self, solver):
        with pytest.raises(ValueError):
            solver([0, 2], 5)

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_loads_never_exceed_capacity(self, solver):
        sizes = [5, 4, 4, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1]
        solution = solver(sizes, 6)
        assert all(load <= 6 for load in solution.bin_loads())


class TestExactness:
    def test_branch_and_bound_beats_ffd_on_adversarial_instance(self):
        # FFD uses 3 bins for these sizes with capacity 10; optimal is 2... no:
        # classic instance where FFD is suboptimal: sizes 6,5,5,4 with cap 10.
        sizes = [6, 5, 5, 4]
        ffd = first_fit_decreasing(sizes, 10)
        exact = branch_and_bound_packing(sizes, 10)
        assert exact.bin_count == 2
        assert exact.bin_count <= ffd.bin_count

    def test_column_generation_matches_exact_on_cutting_stock_instance(self):
        sizes = [4] * 6 + [3] * 6 + [2] * 6
        exact = branch_and_bound_packing(sizes, 9)
        cg = column_generation_packing(sizes, 9)
        assert cg.is_feasible()
        assert cg.bin_count == exact.bin_count

    def test_exact_matches_lp_lower_bound_when_tight(self):
        sizes = [5, 5, 5, 5]
        solution = branch_and_bound_packing(sizes, 10)
        assert solution.bin_count == 2

    def test_node_budget_falls_back_to_ffd_quality(self):
        sizes = [3, 3, 3, 2, 2, 2, 2, 1]
        limited = branch_and_bound_packing(sizes, 6, max_nodes=1)
        assert limited.is_feasible()
        assert limited.bin_count <= first_fit_decreasing(sizes, 6).bin_count + 1


class TestPackComponents:
    def test_groups_respect_capacity(self):
        components = [["a", "b"], ["c", "d"], ["e", "f", "g", "h"], ["i", "j", "k", "l"]]
        groups = pack_components(components, cluster_size=4)
        assert len(groups) == 3
        assert all(len(group) <= 4 for group in groups)

    def test_every_component_kept_together(self):
        components = [["a", "b", "c"], ["d", "e"], ["f"]]
        groups = pack_components(components, cluster_size=6, method="ffd")
        for component in components:
            assert any(set(component) <= set(group) for group in groups)

    def test_overlapping_components_deduplicated(self):
        groups = pack_components([["a", "b"], ["b", "c"]], cluster_size=4, method="ffd")
        assert len(groups) == 1
        assert sorted(groups[0]) == ["a", "b", "c"]

    def test_oversized_component_rejected(self):
        with pytest.raises(ValueError):
            pack_components([["a", "b", "c"]], cluster_size=2)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            pack_components([["a", "b"]], cluster_size=4, method="nope")


class TestPackingSolution:
    def test_is_feasible_detects_missing_items(self):
        solution = PackingSolution(bins=[[0]], capacity=4, sizes=[2, 2], method="manual")
        assert not solution.is_feasible()

    def test_is_feasible_detects_overflow(self):
        solution = PackingSolution(bins=[[0, 1]], capacity=3, sizes=[2, 2], method="manual")
        assert not solution.is_feasible()

    def test_bin_loads(self):
        solution = PackingSolution(bins=[[0, 1], [2]], capacity=4, sizes=[2, 2, 3], method="manual")
        assert solution.bin_loads() == [4, 3]
