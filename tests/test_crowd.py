"""Tests for the simulated crowd: workers, qualification, pricing, latency, platform."""

import pytest

from repro.crowd.latency import LatencyModel
from repro.crowd.platform import CrowdRunResult, SimulatedCrowdPlatform
from repro.crowd.pricing import PricingModel
from repro.crowd.qualification import QualificationTest
from repro.crowd.worker import NOISY, RELIABLE, SPAMMER, Worker, WorkerPool, WorkerProfile
from repro.hit.base import ClusterBasedHIT, HITBatch, PairBasedHIT
from repro.records.pairs import canonical_pair


class TestWorkerProfiles:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkerProfile(name="bad", accuracy=1.5)
        with pytest.raises(ValueError):
            WorkerProfile(name="bad", spammer_mode="weird")

    def test_reliable_worker_mostly_correct(self):
        worker = Worker("w", RELIABLE, seed=1)
        answers = [worker.answer_comparison(True) for _ in range(500)]
        assert sum(answers) / len(answers) > 0.9

    def test_random_spammer_is_uninformative(self):
        worker = Worker("w", SPAMMER, seed=2)
        answers = [worker.answer_comparison(True) for _ in range(1000)]
        assert 0.4 < sum(answers) / len(answers) < 0.6

    def test_always_yes_spammer(self):
        worker = Worker("w", WorkerProfile(name="yes", spammer_mode="always-yes"), seed=0)
        assert all(worker.answer_comparison(False) for _ in range(10))

    def test_qualification_boost(self):
        worker = Worker("w", NOISY, seed=0)
        base = worker.effective_accuracy
        worker.qualified = True
        assert worker.effective_accuracy > base


class TestWorkerHITExecution:
    def test_pair_hit_answers_all_pairs(self):
        worker = Worker("w", RELIABLE, seed=3)
        pairs = (("a", "b"), ("c", "d"))
        answers = worker.do_pair_hit(pairs, truth={("a", "b")})
        assert set(answers) == {("a", "b"), ("c", "d")}

    def test_cluster_hit_answers_are_transitively_consistent(self):
        worker = Worker("w", RELIABLE, seed=4)
        records = ("a", "b", "c", "d")
        truth = {canonical_pair("a", "b"), canonical_pair("b", "c"), canonical_pair("a", "c")}
        answers = worker.do_cluster_hit(records, truth)
        # If a~b and b~c were answered yes, a~c must also be yes (same label).
        if answers[("a", "b")] and answers[("b", "c")]:
            assert answers[("a", "c")]

    def test_cluster_hit_comparison_count_matches_section6(self):
        worker = Worker("w", WorkerProfile(name="perfect", accuracy=1.0), seed=0)
        records = ("r1", "r2", "r3", "r7")
        truth = {("r1", "r2"), ("r1", "r7"), ("r2", "r7")}
        worker.do_cluster_hit(records, truth)
        # Example 4 of the paper: three comparisons suffice.
        assert worker.last_comparisons == 3

    def test_perfect_worker_reproduces_truth(self):
        worker = Worker("w", WorkerProfile(name="perfect", accuracy=1.0), seed=0)
        records = ("a", "b", "c")
        truth = {("a", "b")}
        answers = worker.do_cluster_hit(records, truth)
        assert answers[("a", "b")] is True
        assert answers[("a", "c")] is False
        assert answers[("b", "c")] is False


class TestWorkerPool:
    def test_build_respects_size_and_mix(self):
        pool = WorkerPool.build(size=20, seed=1)
        assert len(pool) == 20
        assert 0 < pool.spammer_count() < 20

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            WorkerPool.build(size=10, reliable_fraction=0.9, noisy_fraction=0.9, spammer_fraction=0.0)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool([])


class TestQualification:
    def test_spammers_usually_fail(self):
        pool = WorkerPool([Worker(f"s{i}", SPAMMER, seed=i) for i in range(40)])
        qualified, rejected = QualificationTest().filter_pool(pool)
        assert len(rejected) > len(qualified)

    def test_reliable_workers_usually_pass(self):
        pool = WorkerPool([Worker(f"r{i}", RELIABLE, seed=i) for i in range(40)])
        qualified, rejected = QualificationTest().filter_pool(pool)
        assert len(qualified) > len(rejected)

    def test_constant_answerers_cannot_pass(self):
        worker = Worker("yes", WorkerProfile(name="yes", spammer_mode="always-yes"), seed=0)
        assert not QualificationTest().administer(worker)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QualificationTest(question_count=0)


class TestPricing:
    def test_paper_cost_examples(self):
        pricing = PricingModel()
        # Restaurant: 112 HITs * 3 assignments * $0.025 = $8.40
        assert pricing.total_cost(112, 3) == pytest.approx(8.4)
        # Product: 508 HITs * 3 assignments * $0.025 = $38.10
        assert pricing.total_cost(508, 3) == pytest.approx(38.1)

    def test_naive_pair_cost_from_introduction(self):
        pricing = PricingModel(reward_per_assignment=0.01, platform_fee_per_assignment=0.0)
        # 10,000 records, k=20 pairs per HIT -> ~2.5M pairs / 20 = 2.5M HITs? No:
        # n*(n-1)/2 ~ 50M pairs / 20 = 2.5M HITs at $0.01 -> $25k.  The paper's
        # figure of 5M HITs corresponds to pair-based batching of 10 pairs; we
        # simply check the formula is consistent.
        cost = pricing.naive_pair_cost(10_000, pairs_per_hit=10, assignments_per_hit=1)
        assert cost == pytest.approx(49_995_000 / 10 * 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            PricingModel(reward_per_assignment=-1)
        with pytest.raises(ValueError):
            PricingModel().total_cost(-1, 3)


class TestLatencyModel:
    def test_pair_assignment_time_grows_with_pairs(self):
        model = LatencyModel()
        assert model.pair_assignment_seconds(28) > model.pair_assignment_seconds(16)

    def test_cluster_assignment_time_grows_with_comparisons(self):
        model = LatencyModel()
        assert model.cluster_assignment_seconds(45) > model.cluster_assignment_seconds(20)

    def test_qualification_adds_time(self):
        model = LatencyModel()
        assert model.pair_assignment_seconds(16, qualified=True) > model.pair_assignment_seconds(16)

    def test_pair_appeal_drops_for_large_batches(self):
        model = LatencyModel()
        assert model.batch_appeal("pair", 28) < model.batch_appeal("pair", 16)

    def test_cluster_appeal_below_pair_appeal(self):
        model = LatencyModel()
        assert model.batch_appeal("cluster") < model.batch_appeal("pair", 16)

    def test_qualification_shrinks_worker_pool(self):
        model = LatencyModel()
        assert model.effective_workers("pair", 16, qualification=True) < model.effective_workers(
            "pair", 16, qualification=False
        )

    def test_estimate_aggregates(self):
        model = LatencyModel()
        estimate = model.estimate([60.0, 80.0, 100.0], hit_type="pair", pairs_per_hit=16)
        assert estimate.median_assignment_seconds == 80.0
        assert estimate.assignment_count == 3
        assert estimate.total_minutes > 0

    def test_empty_estimate(self):
        estimate = LatencyModel().estimate([], hit_type="cluster")
        assert estimate.total_minutes == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().pair_assignment_seconds(-1)
        with pytest.raises(ValueError):
            LatencyModel().batch_appeal("other")


class TestPlatform:
    def _cluster_batch(self):
        candidates = {("a", "b"), ("b", "c")}
        return HITBatch(
            hit_type="cluster",
            hits=[ClusterBasedHIT("h1", ("a", "b", "c"))],
            candidate_pairs=candidates,
            cluster_size=3,
        )

    def test_publish_produces_replicated_votes(self):
        platform = SimulatedCrowdPlatform(assignments_per_hit=3, seed=1)
        result = platform.publish(self._cluster_batch(), true_matches={("a", "b")})
        # 3 assignments x 2 candidate pairs = 6 votes.
        assert len(result.votes) == 6
        assert result.assignment_count == 3
        assert result.cost == pytest.approx(3 * 0.025)
        assert result.latency is not None

    def test_distinct_workers_per_hit(self):
        platform = SimulatedCrowdPlatform(assignments_per_hit=3, seed=2)
        result = platform.publish(self._cluster_batch(), true_matches=set())
        workers = {worker for worker, _pair, _answer in result.votes}
        assert len(workers) == 3

    def test_pair_batch_votes_every_listed_pair(self):
        batch = HITBatch(
            hit_type="pair",
            hits=[PairBasedHIT("h1", (("a", "b"), ("c", "d")))],
            candidate_pairs={("a", "b"), ("c", "d")},
            cluster_size=2,
        )
        platform = SimulatedCrowdPlatform(assignments_per_hit=2, seed=3)
        result = platform.publish(batch, true_matches={("a", "b")})
        voted_pairs = {pair for _w, pair, _a in result.votes}
        assert voted_pairs == {("a", "b"), ("c", "d")}

    def test_qualification_filters_pool(self):
        pool = WorkerPool.build(size=30, seed=4)
        platform = SimulatedCrowdPlatform(pool=pool, qualification=QualificationTest(), seed=4)
        assert platform._eligible  # some workers qualified
        assert len(platform._eligible) < len(pool)

    def test_reproducible_with_seed(self):
        result_a = SimulatedCrowdPlatform(seed=7).publish(self._cluster_batch(), {("a", "b")})
        result_b = SimulatedCrowdPlatform(seed=7).publish(self._cluster_batch(), {("a", "b")})
        assert result_a.votes == result_b.votes

    def test_invalid_assignments(self):
        with pytest.raises(ValueError):
            SimulatedCrowdPlatform(assignments_per_hit=0)


class TestCrowdRunResultAssignmentCount:
    def test_counts_completed_assignments(self):
        result = CrowdRunResult(
            assignment_seconds=[30.0, 40.0, 50.0], hit_count=1, assignments_per_hit=3
        )
        assert result.assignment_count == 3

    def test_unfilled_assignments_are_not_counted(self):
        """Regression: a platform that leaves assignments unfilled must not
        report hit_count * assignments_per_hit completed assignments."""
        result = CrowdRunResult(
            assignment_seconds=[30.0, 40.0, 50.0, 60.0], hit_count=2, assignments_per_hit=3
        )
        assert result.assignment_count == 4
