"""Quickstart: run the hybrid human-machine workflow on the paper's example.

This script walks through the CrowdER pipeline on the nine-product table of
the paper (Table 1): the machine pass prunes the 36 possible pairs down to
ten candidates, the two-tiered algorithm groups them into three cluster-based
HITs, a simulated crowd verifies them, and the aggregated answers yield the
four duplicate pairs of Figure 2(c).

Run with:  python examples/quickstart.py
"""

from repro import HybridWorkflow, WorkflowConfig, paper_example_matches, paper_example_store
from repro.datasets.base import Dataset
from repro.evaluation.metrics import precision_recall


def main() -> None:
    store = paper_example_store()
    dataset = Dataset(name="table-1", store=store, ground_truth=paper_example_matches())

    print("Records (Table 1 of the paper):")
    for record in store:
        print(f"  {record.record_id}: {record.get('product_name')}  {record.get('price')}")

    config = WorkflowConfig(
        likelihood_threshold=0.3,          # the threshold used in Example 1
        hit_type="cluster",
        cluster_size=4,                    # k = 4 as in Section 3.2
        cluster_generator="two-tiered",
        similarity_attributes=["product_name"],
        assignments_per_hit=3,
        seed=1,
    )
    workflow = HybridWorkflow(config)

    candidates = workflow.machine_candidates(dataset)
    print(f"\nMachine pass: {dataset.total_pair_count()} possible pairs, "
          f"{len(candidates)} survive the {config.likelihood_threshold} threshold")

    batch = workflow.generate_hits(candidates)
    print(f"HIT generation ({batch.generator_name}): {batch.hit_count} cluster-based HITs")
    for hit in batch.hits:
        print(f"  {hit.hit_id}: {hit.records}")

    result = workflow.resolve(dataset)
    print("\nCrowd + aggregation:")
    print(f"  cost: ${result.cost:.2f}   assignments: {result.assignment_count}   "
          f"estimated completion: {result.latency.total_minutes:.0f} minutes")
    print(f"  matches found: {sorted(result.matches)}")

    precision, recall = precision_recall(result.matches, dataset.ground_truth)
    print(f"  precision {precision:.0%}, recall {recall:.0%} against the ground truth")


if __name__ == "__main__":
    main()
