"""Durable streaming: checkpoint a session, 'crash', restore, and retract.

This example streams the paper's nine-product table into a durable
:class:`repro.streaming.StreamingResolver` (write-ahead journal + snapshots
in a temporary checkpoint directory), abandons the resolver object as a
stand-in for a process crash, restores the session from disk, verifies the
restored state is bit-identical, finishes the stream, and finally retracts
a record to show provenance-scoped invalidation.

Run with:  PYTHONPATH=src python examples/durable_streaming.py
"""

import shutil
import tempfile

from repro import WorkflowConfig, paper_example_matches, paper_example_store
from repro.streaming import StreamingResolver


def main() -> None:
    checkpoint_dir = tempfile.mkdtemp(prefix="er-session-")
    records = list(paper_example_store())

    config = WorkflowConfig(
        likelihood_threshold=0.3,
        cluster_size=4,
        similarity_attributes=["product_name"],
        vote_mode="per-pair",
        aggregation="majority",
        checkpoint_dir=checkpoint_dir,
        checkpoint_every_batches=2,
        seed=1,
    )
    session = StreamingResolver(config)
    session.add_truth(paper_example_matches())

    print(f"durable session in {checkpoint_dir}")
    snap = session.add_batch(records[:3])
    snap = session.add_batch(records[3:6])
    print(f"after 2 batches: {snap.candidate_count} candidate pairs, "
          f"{len(snap.matches)} matches, {session.events_applied} journal events")
    digest_before = session.state_digest()

    # --- simulate a crash: the in-memory session is simply gone -----------
    del session

    restored = StreamingResolver.restore(checkpoint_dir)
    print(f"restored: {restored.record_count} records, "
          f"digest matches: {restored.state_digest() == digest_before}")

    snap = restored.add_batch(records[6:])
    print(f"stream complete: matches = {sorted(snap.matches)}")

    # --- a correction arrives: r2 was withdrawn by its source -------------
    snap = restored.retract("r2")
    delta = snap.delta
    print(f"retracted r2: {delta.invalidated_pairs} pairs invalidated, "
          f"{delta.dirty_components} component(s) re-resolved, "
          f"{delta.clean_components} untouched")
    print(f"matches now: {sorted(snap.matches)}")

    shutil.rmtree(checkpoint_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
