"""Scenario: integrating two product catalogues (the Abt-Buy workload).

This is the workload the paper's introduction motivates: two websites
describe the same products with very different text, machine similarity
alone is unreliable, and a human-only approach would need to inspect more
than a million record pairs.  The hybrid workflow prunes the candidate space
by two orders of magnitude and sends only the plausible pairs to the
(simulated) crowd.

Run with:  python examples/product_deduplication.py  [--scale 0.3]
"""

import argparse

from repro import HybridWorkflow, SimJoinRanker, WorkflowConfig, load_product
from repro.core.baselines import human_only_hit_count
from repro.evaluation.metrics import average_precision, precision_recall
from repro.evaluation.threshold_table import threshold_table


def main(scale: float) -> None:
    dataset = load_product(scale=scale)
    abt = len(dataset.store.records_from_source("abt"))
    buy = len(dataset.store.records_from_source("buy"))
    print(f"Product dataset: {abt} abt records x {buy} buy records, "
          f"{dataset.match_count} true matches, {dataset.total_pair_count():,} candidate pairs")

    naive_hits = human_only_hit_count(dataset.record_count, hit_size=20)
    print(f"A human-only pair-based approach would need ~{naive_hits:,} HITs "
          f"(${naive_hits * 3 * 0.025:,.0f} at $0.025 per assignment)")

    print("\nLikelihood-threshold selection (Table 2(b) of the paper):")
    for row in threshold_table(dataset, thresholds=(0.5, 0.4, 0.3, 0.2, 0.1)):
        print(f"  threshold {row.threshold:.1f}: {row.total_pairs:>8,} pairs, "
              f"{row.matching_pairs:>5} matches, recall {row.recall:6.1%}")

    config = WorkflowConfig(likelihood_threshold=0.2, cluster_size=10, seed=7)
    workflow = HybridWorkflow(config)
    result = workflow.resolve(dataset)
    precision, recall = precision_recall(result.matches, dataset.ground_truth)
    print("\nHybrid workflow (threshold 0.2, cluster-based HITs, k=10):")
    print(f"  {result.candidate_count:,} pairs crowdsourced in {result.hit_count} HITs "
          f"(${result.cost:.2f}, ~{result.latency.total_minutes:.0f} minutes)")
    print(f"  precision {precision:.1%}, recall {recall:.1%} "
          f"(recall ceiling from pruning: {result.recall_ceiling:.1%})")

    machine_only = SimJoinRanker(min_likelihood=0.2).rank(dataset)
    print("\nMachine-only comparison:")
    print(f"  simjoin average precision: {average_precision(machine_only, dataset.ground_truth):.3f}")
    print(f"  hybrid  average precision: {average_precision(result.ranked_pairs, dataset.ground_truth):.3f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3,
                        help="dataset scale (1.0 = the paper's full size)")
    main(parser.parse_args().scale)
