"""Scenario: trading off cost, quality and latency with the likelihood threshold.

The paper's future-work section calls for budget-aware hybrid entity
resolution: the likelihood threshold directly trades crowd cost (number of
HITs) against the best recall the workflow can reach.  This example sweeps
the threshold on the Restaurant dataset and reports cost, latency and
result quality for each setting, so a user can pick the operating point
that fits their budget.

Run with:  python examples/budget_tradeoff.py
"""

from repro import HybridWorkflow, WorkflowConfig, load_restaurant
from repro.evaluation.metrics import f1_score, precision_recall
from repro.evaluation.reporting import format_table


def main() -> None:
    dataset = load_restaurant()
    rows = []
    for threshold in (0.5, 0.4, 0.35, 0.3, 0.25):
        config = WorkflowConfig(likelihood_threshold=threshold, cluster_size=10, seed=11)
        result = HybridWorkflow(config).resolve(dataset)
        precision, recall = precision_recall(result.matches, dataset.ground_truth)
        rows.append(
            {
                "threshold": threshold,
                "pairs": result.candidate_count,
                "hits": result.hit_count,
                "cost($)": result.cost,
                "minutes": result.latency.total_minutes,
                "precision": precision,
                "recall": recall,
                "f1": f1_score(result.matches, dataset.ground_truth),
            }
        )

    print(format_table(
        rows,
        columns=["threshold", "pairs", "hits", "cost($)", "minutes", "precision", "recall", "f1"],
        title="Budget / quality trade-off on the Restaurant dataset (cluster HITs, k=10)",
    ))

    cheapest = min(rows, key=lambda row: row["cost($)"])
    best = max(rows, key=lambda row: row["f1"])
    print(f"\nCheapest run: threshold {cheapest['threshold']} at ${cheapest['cost($)']:.2f} "
          f"with F1 {cheapest['f1']:.2f}")
    print(f"Best quality: threshold {best['threshold']} at ${best['cost($)']:.2f} "
          f"with F1 {best['f1']:.2f}")


if __name__ == "__main__":
    main()
