"""Scenario: comparing cluster-based HIT generation algorithms.

Reproduces the flavour of Figures 10 and 11 interactively: generate the
candidate pairs of the Restaurant dataset at several likelihood thresholds
and count how many cluster-based HITs each algorithm needs.  Fewer HITs
means lower crowdsourcing cost at the same coverage.

Run with:  python examples/hit_generation_comparison.py
"""

from repro import get_cluster_generator, load_restaurant
from repro.crowd.pricing import PricingModel
from repro.evaluation.reporting import format_table
from repro.simjoin.likelihood import SimJoinLikelihood

ALGORITHMS = ["random", "dfs", "bfs", "approximation", "two-tiered"]


def main() -> None:
    dataset = load_restaurant()
    estimator = SimJoinLikelihood()
    pricing = PricingModel()

    rows = []
    for threshold in (0.4, 0.3, 0.2):
        pairs = estimator.estimate(dataset.store, min_likelihood=threshold)
        row = {"threshold": threshold, "pairs": len(pairs)}
        for name in ALGORITHMS:
            generator = get_cluster_generator(name, cluster_size=10)
            batch = generator.generate(pairs)
            assert batch.is_valid_cover()
            row[name] = batch.hit_count
        rows.append(row)

    print(format_table(
        rows,
        columns=["threshold", "pairs"] + ALGORITHMS,
        title="Cluster-based HITs needed (Restaurant, k=10) — fewer is better",
        float_format="{:.1f}",
    ))

    best_threshold = rows[-1]
    two_tiered = best_threshold["two-tiered"]
    best_baseline = min(best_threshold[name] for name in ALGORITHMS if name != "two-tiered")
    print(f"\nAt threshold {best_threshold['threshold']}, the two-tiered approach needs "
          f"{two_tiered} HITs vs {best_baseline} for the best baseline "
          f"({best_baseline / two_tiered:.1f}x fewer), saving "
          f"${pricing.total_cost(best_baseline - two_tiered):.2f} per run at 3 assignments per HIT.")


if __name__ == "__main__":
    main()
