"""Resolution service throughput: reused pool vs fork-per-batch + HTTP serving.

Two measurements, each with a built-in correctness assertion:

1. **Pool reuse under streaming appends** — the workload the service puts
   on the join layer: many small appends into one growing session, every
   append sharded across a worker pool.  ``pool_mode="reused"`` (one
   long-lived pool, payloads published through shared memory) against
   ``pool_mode="fork"`` (the legacy per-batch ``fork``/teardown), asserting
   the accumulated pair deltas are *bit-identical*.  The full run gates the
   tentpole acceptance criterion: >= ``--min-speedup`` (default 2x)
   records/sec at 10k records with ``--workers`` (default 4).

2. **Service throughput** — an in-process :class:`repro.service.app.
   ResolutionService` hosting ``--sessions`` concurrent sessions, each
   driven from its own client thread.  Reports aggregate records/sec and
   p99 append latency, and asserts every served result is bit-identical to
   a standalone :class:`~repro.streaming.StreamingResolver` replay.

Standalone script (not a pytest-benchmark module) so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_service.py            # full gates
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # <30 s CI run

The smoke run asserts all equivalences at small sizes but applies no
speedup gate — pool-creation overhead only dominates once the resident
index is large.  The nightly job runs the full gate.  ``--json`` writes
the measured rows for artifact upload.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import WorkflowConfig
from repro.datasets.restaurant import RestaurantGenerator
from repro.evaluation.reporting import format_table
from repro.service.app import ResolutionService
from repro.service.client import ServiceClient
from repro.service.sessions import encode_result
from repro.simjoin.pool import shutdown_pools
from repro.streaming import StreamingResolver
from repro.streaming.incremental_join import IncrementalSimJoin
from repro.streaming.persistence import encode_record


def _records(record_count: int, seed: int):
    dataset = RestaurantGenerator(
        record_count=record_count,
        duplicate_pairs=max(1, record_count // 8),
        seed=seed,
    ).generate()
    return dataset, list(dataset.store)


# ---------------------------------------------------------- pool reuse
def _stream_joins(records, mode: str, workers: int, batch: int, block: int):
    """Stream ``records`` through an incremental join; return (seconds, pairs)."""
    join = IncrementalSimJoin(
        threshold=0.3,
        backend="parallel",
        workers=workers,
        block_size=block,
        pool_mode=mode,
    )
    pairs = []
    start = time.perf_counter()
    for offset in range(0, len(records), batch):
        pairs.extend(join.add_batch(records[offset : offset + batch]))
    seconds = time.perf_counter() - start
    shutdown_pools()
    return seconds, sorted((pair.key, pair.likelihood) for pair in pairs)


def run_pool_scenario(
    record_count: int, workers: int, batch: int, block: int, seed: int
) -> dict:
    """Time both pool modes on the same append stream; assert bit-identical."""
    _, records = _records(record_count, seed)
    reused_seconds, reused_pairs = _stream_joins(records, "reused", workers, batch, block)
    fork_seconds, fork_pairs = _stream_joins(records, "fork", workers, batch, block)
    identical = reused_pairs == fork_pairs
    speedup = fork_seconds / reused_seconds if reused_seconds > 0 else float("inf")
    return {
        "records": record_count,
        "batch": batch,
        "workers": workers,
        "fork_rps": f"{record_count / fork_seconds:.0f}",
        "reused_rps": f"{record_count / reused_seconds:.0f}",
        "fork_s": f"{fork_seconds:.3f}",
        "reused_s": f"{reused_seconds:.3f}",
        "speedup": f"{speedup:.2f}x",
        "bit_identical": identical,
        "_speedup": speedup,
        "_identical": identical,
    }


# ------------------------------------------------------- service serving
class _ServiceThread:
    """The service on its own event-loop thread, bound to an ephemeral port."""

    def __init__(self, shard_count: int, queue_depth: int = 256) -> None:
        self.service = ResolutionService(
            port=0, shard_count=shard_count, queue_depth=queue_depth
        )
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self) -> ServiceClient:
        self.thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("service failed to start")
        return ServiceClient("127.0.0.1", self.service.port)

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(30)


def run_service_scenario(
    session_count: int, records_per_session: int, batch: int, seed: int
) -> dict:
    """Drive N concurrent sessions over HTTP; assert every result matches
    a standalone resolver replaying the same appends."""
    workloads = []
    for index in range(session_count):
        _, records = _records(records_per_session, seed + index)
        workloads.append((f"bench-{index}", records))

    runner = _ServiceThread(shard_count=max(2, session_count))
    client = runner.start()
    latencies: List[float] = []
    latency_lock = threading.Lock()

    def drive(session_id: str, records) -> dict:
        client.create_session(
            session_id, config={"likelihood_threshold": 0.35, "aggregation": "majority"}
        )
        for offset in range(0, len(records), batch):
            payload = [
                encode_record(record)
                for record in records[offset : offset + batch]
            ]
            started = time.perf_counter()
            client.append(session_id, payload)
            elapsed = time.perf_counter() - started
            with latency_lock:
                latencies.append(elapsed)
        client.flush(session_id)
        served = client.result(session_id)
        client.close(session_id)
        return served

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=session_count) as pool:
        futures = [
            pool.submit(drive, session_id, records)
            for session_id, records in workloads
        ]
        served_results = [future.result() for future in futures]
    wall_seconds = time.perf_counter() - start
    runner.stop()

    identical = True
    for (session_id, records), served in zip(workloads, served_results):
        resolver = StreamingResolver(
            config=WorkflowConfig(
                likelihood_threshold=0.35,
                vote_mode="per-pair",
                aggregation="majority",
            )
        )
        for offset in range(0, len(records), batch):
            resolver.add_batch(records[offset : offset + batch])
        resolver.flush()
        if encode_result(resolver.snapshot()) != served:
            identical = False

    total_records = session_count * records_per_session
    return {
        "sessions": session_count,
        "records": total_records,
        "batch": batch,
        "wall_s": f"{wall_seconds:.3f}",
        "records_per_s": f"{total_records / wall_seconds:.0f}",
        "append_p99_ms": f"{np.percentile(latencies, 99) * 1000:.1f}",
        "bit_identical": identical,
        "_identical": identical,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, equivalence asserts only, no speedup gate (<30 s)",
    )
    parser.add_argument(
        "--records", type=int, default=None,
        help="records streamed through the pool scenario (default 10000; smoke 600)",
    )
    parser.add_argument("--workers", type=int, default=4, help="join worker processes")
    parser.add_argument(
        "--append-batch", type=int, default=50,
        help="records per streaming append (small on purpose: the service "
             "workload is many low-latency appends, where per-batch forking "
             "is at its worst)",
    )
    parser.add_argument(
        "--block-size", type=int, default=8,
        help="matmul row-block size (small so every append genuinely shards "
             "across the pool)",
    )
    parser.add_argument(
        "--sessions", type=int, default=None,
        help="concurrent sessions in the serving scenario (default 4; smoke 2)",
    )
    parser.add_argument(
        "--session-records", type=int, default=None,
        help="records per served session (default 1000; smoke 150)",
    )
    parser.add_argument("--seed", type=int, default=7, help="dataset seed")
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required reused-over-fork records/sec ratio (full runs)",
    )
    parser.add_argument("--json", type=str, default=None, help="write measured rows to this JSON file")
    args = parser.parse_args(argv)

    records = args.records or (600 if args.smoke else 10_000)
    sessions = args.sessions or (2 if args.smoke else 4)
    session_records = args.session_records or (150 if args.smoke else 1000)

    pool_row = run_pool_scenario(
        records, args.workers, args.append_batch, args.block_size, args.seed
    )
    print(format_table(
        [pool_row],
        columns=["records", "batch", "workers", "fork_rps", "reused_rps",
                 "fork_s", "reused_s", "speedup", "bit_identical"],
        title=f"Streaming appends — reused pool vs fork-per-batch, "
              f"{args.workers} workers",
    ))

    service_row = run_service_scenario(
        sessions, session_records, max(25, args.append_batch), args.seed
    )
    print(format_table(
        [service_row],
        columns=["sessions", "records", "batch", "wall_s", "records_per_s",
                 "append_p99_ms", "bit_identical"],
        title=f"Service throughput — {sessions} concurrent sessions over HTTP",
    ))

    if args.json:
        payload = {
            "benchmark": "service",
            "cpus": os.cpu_count(),
            "records": records,
            "workers": args.workers,
            "append_batch": args.append_batch,
            "block_size": args.block_size,
            "pool": {k: v for k, v in pool_row.items() if not k.startswith("_")},
            "service": {k: v for k, v in service_row.items() if not k.startswith("_")},
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    failures = 0
    if not pool_row["_identical"]:
        print(
            "MISMATCH: reused-pool and fork-per-batch deltas differ",
            file=sys.stderr,
        )
        failures += 1
    if not service_row["_identical"]:
        print(
            "MISMATCH: a served session differs from its standalone replay",
            file=sys.stderr,
        )
        failures += 1
    if not args.smoke and pool_row["_speedup"] < args.min_speedup:
        print(
            f"FAIL: reused-pool speedup {pool_row['_speedup']:.2f}x at "
            f"{records} records with {args.workers} workers is below the "
            f"required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        failures += 1
    if failures:
        return 1
    print(
        "served sessions and reused-pool streams are bit-identical to their "
        "standalone references"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
