"""Ablation: answer aggregation (Dawid-Skene EM vs majority vote) under spam.

Section 7.3 argues that vote averaging "is susceptible to spammers" and uses
the EM-based algorithm instead.  This benchmark sweeps the spammer fraction
of the worker pool and reports the F1 of the hybrid workflow under both
aggregators, quantifying how much the EM step buys.
"""

from repro.core.config import WorkflowConfig
from repro.core.workflow import HybridWorkflow
from repro.crowd.worker import WorkerPool
from repro.evaluation.metrics import f1_score
from repro.evaluation.reporting import format_table

SPAMMER_FRACTIONS = (0.1, 0.25, 0.4)


def _run(dataset, threshold=0.35):
    rows = []
    for spammer_fraction in SPAMMER_FRACTIONS:
        reliable = 0.9 - spammer_fraction
        row = {"spammers": spammer_fraction}
        for aggregation in ("majority", "dawid-skene"):
            pool = WorkerPool.build(
                size=60,
                reliable_fraction=reliable,
                noisy_fraction=0.1,
                spammer_fraction=spammer_fraction,
                seed=17,
            )
            config = WorkflowConfig(
                likelihood_threshold=threshold,
                cluster_size=10,
                aggregation=aggregation,
                seed=17,
            )
            result = HybridWorkflow(config, worker_pool=pool).resolve(dataset)
            row[aggregation] = f1_score(result.matches, dataset.ground_truth)
        rows.append(row)
    return rows


def test_ablation_aggregation_restaurant(benchmark, restaurant_dataset, report):
    rows = benchmark.pedantic(_run, args=(restaurant_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=["spammers", "majority", "dawid-skene"],
        title="Ablation — Restaurant: F1 of the hybrid workflow vs spammer fraction "
              "(majority vote vs Dawid-Skene EM)",
    ))
