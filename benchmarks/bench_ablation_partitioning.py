"""Ablation: top-tier tie-breaking rule in LCC partitioning.

Algorithm 2 breaks ties among maximum-indegree candidates by choosing the
minimum-outdegree vertex; this benchmark compares that rule against a
maximum-outdegree rule and a plain lexical rule to quantify how much the
paper's choice matters for the final HIT count.
"""

from repro.evaluation.reporting import format_table
from repro.hit.two_tiered import TwoTieredClusterGenerator
from repro.simjoin.likelihood import SimJoinLikelihood

TIE_BREAKS = ["min-outdegree", "max-outdegree", "lexical"]


def _run(dataset, threshold=0.2, cluster_size=10):
    pairs = SimJoinLikelihood().estimate(
        dataset.store, min_likelihood=threshold, cross_sources=dataset.cross_sources
    )
    rows = []
    for rule in TIE_BREAKS:
        generator = TwoTieredClusterGenerator(cluster_size=cluster_size, tie_break=rule)
        batch = generator.generate(pairs)
        rows.append({"tie_break": rule, "pairs": len(pairs), "hits": batch.hit_count})
    return rows


def test_ablation_partitioning_restaurant(benchmark, restaurant_dataset, report):
    rows = benchmark.pedantic(_run, args=(restaurant_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=["tie_break", "pairs", "hits"],
        title="Ablation — Restaurant: partitioning tie-break rule vs number of HITs",
    ))


def test_ablation_partitioning_product(benchmark, product_dataset, report):
    rows = benchmark.pedantic(_run, args=(product_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=["tie_break", "pairs", "hits"],
        title="Ablation — Product: partitioning tie-break rule vs number of HITs",
    ))
