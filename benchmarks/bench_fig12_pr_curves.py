"""Figure 12: precision-recall of simjoin, SVM, hybrid and hybrid(QT).

Reproduces the Section-7.3 comparison on both datasets: the machine-only
rankers (Jaccard likelihood and the SVM baseline) against the hybrid
human-machine workflow with and without a qualification test.  The report
prints the precision reached at fixed recall levels for every technique
(the textual equivalent of the PR curves), plus the crowd cost of the
hybrid runs — the paper quotes $8.40 for Restaurant and $38.10 for Product.
"""

from repro.core.baselines import SimJoinRanker, SVMRanker
from repro.core.config import WorkflowConfig
from repro.core.workflow import HybridWorkflow
from repro.evaluation.metrics import average_precision, precision_recall_curve
from repro.evaluation.reporting import format_table

RECALL_LEVELS = (0.3, 0.5, 0.7, 0.8, 0.9)


def _precision_at(curve, level):
    eligible = [precision for recall, precision in curve if recall >= level - 1e-9]
    return max(eligible) if eligible else 0.0


def _evaluate(dataset, hybrid_threshold, svm_attributes, seed=5):
    """Return per-technique PR summaries plus hybrid cost figures."""
    truth = dataset.ground_truth
    results = []

    simjoin_ranked = SimJoinRanker(min_likelihood=0.1).rank(dataset)
    results.append(("simjoin", simjoin_ranked, None))

    svm_ranked = SVMRanker(
        min_likelihood=0.1, training_size=500, repetitions=2, attributes=svm_attributes, seed=seed
    ).rank(dataset)
    results.append(("SVM", svm_ranked, None))

    costs = {}
    for label, use_qt in (("hybrid", False), ("hybrid(QT)", True)):
        config = WorkflowConfig(
            likelihood_threshold=hybrid_threshold,
            cluster_size=10,
            use_qualification_test=use_qt,
            seed=seed,
        )
        outcome = HybridWorkflow(config).resolve(dataset)
        results.append((label, outcome.ranked_pairs, outcome))
        costs[label] = outcome

    rows = []
    for label, ranked, outcome in results:
        curve = precision_recall_curve(ranked, truth)
        row = {"technique": label, "AP": average_precision(ranked, truth)}
        for level in RECALL_LEVELS:
            row[f"P@R>={level}"] = _precision_at(curve, level)
        if outcome is not None:
            row["hits"] = outcome.hit_count
            row["cost($)"] = round(outcome.cost, 2)
            row["minutes"] = round(outcome.latency.total_minutes, 1)
        rows.append(row)
    return rows


COLUMNS = ["technique", "AP"] + [f"P@R>={level}" for level in RECALL_LEVELS] + [
    "hits", "cost($)", "minutes",
]


def test_fig12a_restaurant(benchmark, restaurant_dataset, report):
    rows = benchmark.pedantic(
        _evaluate,
        args=(restaurant_dataset, 0.35, None),
        rounds=1,
        iterations=1,
    )
    report(format_table(
        rows, columns=COLUMNS,
        title="Figure 12(a) — Restaurant: precision at fixed recall levels "
              "(hybrid threshold 0.35, k=10, 3 assignments)",
    ))


def test_fig12b_product(benchmark, product_dataset, report):
    rows = benchmark.pedantic(
        _evaluate,
        args=(product_dataset, 0.2, ["name"]),
        rounds=1,
        iterations=1,
    )
    report(format_table(
        rows, columns=COLUMNS,
        title="Figure 12(b) — Product: precision at fixed recall levels "
              "(hybrid threshold 0.2, k=10, 3 assignments)",
    ))
