"""Figure 15: result quality of pair-based vs cluster-based HITs.

The paper finds the two HIT designs deliver similar quality; this benchmark
reports average precision and precision at fixed recall levels for both
designs, with and without a qualification test.
"""

from _pair_vs_cluster import run_comparison

from repro.evaluation.reporting import format_table

COLUMNS = ["config", "hits", "AP", "P@R>=0.5", "P@R>=0.8"]


def test_fig15a_product(benchmark, product_dataset, report):
    rows = benchmark.pedantic(run_comparison, args=(product_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=COLUMNS,
        title="Figure 15(a) — Product: quality of pair-based vs cluster-based HITs",
    ))


def test_fig15b_product_dup(benchmark, product_dup_dataset, report):
    rows = benchmark.pedantic(run_comparison, args=(product_dup_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=COLUMNS,
        title="Figure 15(b) — Product+Dup: quality of pair-based vs cluster-based HITs",
    ))
