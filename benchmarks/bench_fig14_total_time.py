"""Figure 14: total time to complete all HITs, pair vs cluster.

The crossover of the paper: on Product the pair-based batch finishes first
(the familiar interface attracts more workers), while on Product+Dup the
cluster-based batch wins (its assignments are much faster and the very
large pair HITs needed to keep the HIT count equal deter workers).
Qualification tests increase total time for both designs.
"""

from _pair_vs_cluster import run_comparison

from repro.evaluation.reporting import format_table

COLUMNS = ["config", "hits", "cost($)", "total_min"]


def test_fig14a_product(benchmark, product_dataset, report):
    rows = benchmark.pedantic(run_comparison, args=(product_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=COLUMNS,
        title="Figure 14(a) — Product: total completion time (minutes)",
    ))


def test_fig14b_product_dup(benchmark, product_dup_dataset, report):
    rows = benchmark.pedantic(run_comparison, args=(product_dup_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=COLUMNS,
        title="Figure 14(b) — Product+Dup: total completion time (minutes)",
    ))


if __name__ == "__main__":  # standalone: emit rows + metrics snapshot as JSON
    import sys

    from _pair_vs_cluster import standalone_main

    sys.exit(standalone_main("14", COLUMNS))
