"""Shared harness for the pair-based vs cluster-based comparison (Section 7.4).

Figures 13, 14 and 15 of the paper all use the same experimental protocol:

* generate the candidate pairs at likelihood threshold 0.2;
* build cluster-based HITs with the two-tiered approach (k = 10), yielding
  some number ``h`` of HITs;
* build pair-based HITs containing enough pairs so that exactly ``h``
  pair-based HITs are generated (constant cost across the two designs);
* run both batches through the simulated crowd, with and without a
  qualification test, and record per-assignment time, total completion time
  and answer quality.

This module is not collected by pytest (leading underscore); the three
benchmark files import :func:`run_comparison` and report different columns
of its output.
"""

from __future__ import annotations

import argparse
import json
import math
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.aggregation.dawid_skene import DawidSkeneAggregator
from repro.crowd.platform import SimulatedCrowdPlatform
from repro.crowd.qualification import QualificationTest
from repro.crowd.worker import WorkerPool
from repro.evaluation.metrics import average_precision, precision_recall_curve
from repro.hit.generator import get_cluster_generator
from repro.hit.pair_generation import PairHITGenerator
from repro.simjoin.likelihood import SimJoinLikelihood

LIKELIHOOD_THRESHOLD = 0.2
CLUSTER_SIZE = 10
ASSIGNMENTS_PER_HIT = 3


def _precision_at(curve, level):
    eligible = [precision for recall, precision in curve if recall >= level - 1e-9]
    return max(eligible) if eligible else 0.0


def run_comparison(dataset, seed: int = 3) -> List[Dict[str, object]]:
    """Run P-vs-C (with and without QT) on one dataset; one dict per config."""
    estimator = SimJoinLikelihood()
    pairs = estimator.estimate(
        dataset.store,
        min_likelihood=LIKELIHOOD_THRESHOLD,
        cross_sources=dataset.cross_sources,
    )

    cluster_batch = get_cluster_generator("two-tiered", cluster_size=CLUSTER_SIZE).generate(pairs)
    hit_budget = max(1, cluster_batch.hit_count)
    pairs_per_hit = max(1, math.ceil(len(pairs) / hit_budget))
    pair_batch = PairHITGenerator(pairs_per_hit=pairs_per_hit).generate(pairs)

    configurations = [
        (f"P{pairs_per_hit}", pair_batch, False),
        (f"C{CLUSTER_SIZE}", cluster_batch, False),
        (f"P{pairs_per_hit} (QT)", pair_batch, True),
        (f"C{CLUSTER_SIZE} (QT)", cluster_batch, True),
    ]

    rows: List[Dict[str, object]] = []
    for label, batch, use_qt in configurations:
        platform = SimulatedCrowdPlatform(
            pool=WorkerPool.build(seed=seed),
            assignments_per_hit=ASSIGNMENTS_PER_HIT,
            qualification=QualificationTest() if use_qt else None,
            seed=seed,
        )
        run = platform.publish(batch, true_matches=dataset.ground_truth)
        posteriors = DawidSkeneAggregator().aggregate(run.votes)
        likelihoods = {pair.key: pair.likelihood or 0.0 for pair in pairs}
        ranked = sorted(
            likelihoods,
            key=lambda key: (posteriors.get(key, -1.0), likelihoods[key]),
            reverse=True,
        )
        curve = precision_recall_curve(ranked, dataset.ground_truth)
        rows.append(
            {
                "config": label,
                "hits": batch.hit_count,
                "assignments": run.assignment_count,
                "median_sec": round(run.latency.median_assignment_seconds, 1),
                "total_min": round(run.latency.total_minutes, 1),
                "cost($)": round(run.cost, 2),
                "AP": average_precision(ranked, dataset.ground_truth),
                "P@R>=0.5": _precision_at(curve, 0.5),
                "P@R>=0.8": _precision_at(curve, 0.8),
            }
        )
    return rows


def standalone_main(
    figure: str,
    columns: List[str],
    argv: Optional[Sequence[str]] = None,
) -> int:
    """Shared CLI for running a figure's comparison outside pytest.

    Runs the protocol on Product and Product+Dup with the metrics registry
    enabled and, with ``--json PATH``, writes the rows *and* the metric
    snapshot (HIT generation, crowd and aggregation instrumentation) as one
    JSON artifact.
    """
    from conftest import bench_scale  # benchmarks/ is the working directory

    from repro.datasets.product import load_product
    from repro.datasets.product_dup import ProductDupGenerator
    from repro.evaluation.reporting import format_table

    parser = argparse.ArgumentParser(
        description=f"Figure {figure}: pair vs cluster HITs (standalone run)"
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="Product dataset scale (default: REPRO_BENCH_SCALE)")
    parser.add_argument("--seed", type=int, default=3, help="crowd seed")
    parser.add_argument("--json", type=str, default=None,
                        help="write rows + metrics snapshot to this JSON file")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else bench_scale()
    obs.activate()
    try:
        datasets = [
            ("product", load_product(scale=scale)),
            ("product-dup", ProductDupGenerator(
                base_records=100, max_duplicates=9, seed=11, product_scale=scale,
            ).generate()),
        ]
        results = {}
        for name, dataset in datasets:
            rows = run_comparison(dataset, seed=args.seed)
            results[name] = rows
            print(format_table(
                rows, columns=columns,
                title=f"Figure {figure} — {name}",
            ))
        snapshot = obs.snapshot()
        if args.json:
            payload = {
                "benchmark": f"fig{figure}",
                "scale": scale,
                "seed": args.seed,
                "rows": {
                    name: [
                        {key: row[key] for key in columns} for row in rows
                    ]
                    for name, rows in results.items()
                },
                "metrics": snapshot.to_dict() if snapshot is not None else {},
            }
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {args.json}")
    finally:
        obs.deactivate()
    return 0
