"""Ablation: bottom-tier packing solver (FFD vs branch-and-bound vs column generation).

DESIGN.md calls out the packing solver as a design choice worth ablating:
the paper uses column generation + branch-and-bound; this benchmark checks
how much the cheaper first-fit-decreasing heuristic gives up in HIT count
(usually nothing on real pair graphs, where most packed components are
two-record SCCs).
"""

from repro.evaluation.reporting import format_table
from repro.hit.two_tiered import TwoTieredClusterGenerator
from repro.simjoin.likelihood import SimJoinLikelihood

METHODS = ["ffd", "branch-and-bound", "column-generation"]


def _run(dataset, threshold=0.2, cluster_size=10):
    pairs = SimJoinLikelihood().estimate(
        dataset.store, min_likelihood=threshold, cross_sources=dataset.cross_sources
    )
    rows = []
    for method in METHODS:
        generator = TwoTieredClusterGenerator(cluster_size=cluster_size, packing_method=method)
        batch = generator.generate(pairs)
        rows.append({"packing": method, "pairs": len(pairs), "hits": batch.hit_count})
    return rows


def test_ablation_packing_restaurant(benchmark, restaurant_dataset, report):
    rows = benchmark.pedantic(_run, args=(restaurant_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=["packing", "pairs", "hits"],
        title="Ablation — Restaurant: packing solver vs number of cluster-based HITs",
    ))


def test_ablation_packing_product(benchmark, product_dataset, report):
    rows = benchmark.pedantic(_run, args=(product_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=["packing", "pairs", "hits"],
        title="Ablation — Product: packing solver vs number of cluster-based HITs",
    ))
