"""SQLite-backed storage vs in-memory: page-in restore speed and peak RSS.

Measures what the pluggable storage layer (:mod:`repro.storage`) buys:

1. **Restore is a page-in, not a replay.**  A SQLite-backed session keeps
   its committed state in the store, so ``StreamingResolver.restore()``
   loads the ledger/join substrate back in and replays at most the short
   journal tail beyond the last event boundary.  The benchmark builds a
   durable session (that build *is* the cold-resolve cost a crash would
   force without the store), closes it, restores it, asserts the restored
   session is **bit-identical**, and reports the speedup.

2. **Records and token sets live on disk.**  In offload mode the session
   holds neither record bodies nor per-record token sets in RAM.  The
   benchmark streams the same store through a memory-backed and a
   SQLite-backed session in *separate subprocesses* (``ru_maxrss`` is a
   per-process high-water mark, so the scenarios must not share one) and
   compares the peaks.

Standalone script (not a pytest-benchmark module) so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_storage.py            # full gates
    PYTHONPATH=src python benchmarks/bench_storage.py --smoke    # <30 s CI run

The full run gates both acceptance criteria: restore-from-SQLite must beat
the cold re-resolve by at least ``--min-speedup`` (default 5x) at the
largest size, and the SQLite-backed peak RSS must stay below the in-memory
baseline on the ``--rss-size`` stream (default 50,000 records).  ``--json``
writes the measured rows, which CI commits as ``BENCH_storage.json`` so the
perf trajectory is visible in-repo.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.core.config import WorkflowConfig
from repro.datasets.restaurant import RestaurantGenerator
from repro.evaluation.reporting import format_table
from repro.streaming import StreamingResolver


def build_session(
    record_count: int,
    threshold: float,
    seed: int,
    batch_size: int,
    backend: str,
    directory: Optional[Path],
) -> StreamingResolver:
    dataset = RestaurantGenerator(
        record_count=record_count,
        duplicate_pairs=max(1, record_count // 8),
        seed=seed,
    ).generate()
    config = WorkflowConfig(
        likelihood_threshold=threshold,
        vote_mode="per-pair",
        aggregation="majority",
        seed=seed,
        storage_backend=backend,
        checkpoint_dir=str(directory) if directory is not None else None,
        checkpoint_every_batches=0,
    )
    records = list(dataset.store)
    resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
    resolver.add_truth(dataset.ground_truth)
    for start in range(0, len(records), batch_size):
        resolver.add_batch(records[start : start + batch_size])
    return resolver


def run_restore_scenario(
    record_count: int, threshold: float, seed: int, batch_size: int
) -> dict:
    """Time one cold-resolve vs page-in-restore scenario."""
    directory = Path(tempfile.mkdtemp(prefix="bench-storage-"))
    try:
        start_time = time.perf_counter()
        resolver = build_session(
            record_count, threshold, seed, batch_size, "sqlite", directory
        )
        cold_seconds = time.perf_counter() - start_time
        digest = resolver.state_digest()
        matches = set(resolver.snapshot().matches)
        store_bytes = Path(resolver.storage.path).stat().st_size
        resolver.storage.close()

        start_time = time.perf_counter()
        restored = StreamingResolver.restore(directory, resume_journal=False)
        restore_seconds = time.perf_counter() - start_time
        identical = (
            restored.state_digest() == digest
            and set(restored.snapshot().matches) == matches
        )
        restored.storage.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    speedup = cold_seconds / restore_seconds if restore_seconds > 0 else float("inf")
    return {
        "records": record_count,
        "pairs": restored.candidate_count,
        "cold_resolve_s": f"{cold_seconds:.3f}",
        "restore_s": f"{restore_seconds:.4f}",
        "store_mb": f"{store_bytes / 1e6:.2f}",
        "speedup": f"{speedup:.1f}x",
        "bit_identical": identical,
        "_speedup": speedup,
        "_identical": identical,
    }


def run_rss_child(
    backend: str, record_count: int, threshold: float, seed: int, batch_size: int
) -> int:
    """Child-process entry point: stream the store, print peak RSS as JSON."""
    directory = (
        Path(tempfile.mkdtemp(prefix="bench-storage-rss-"))
        if backend == "sqlite"
        else None
    )
    try:
        resolver = build_session(
            record_count, threshold, seed, batch_size, backend, directory
        )
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        print(
            json.dumps(
                {
                    "backend": backend,
                    "records": len(resolver.store),
                    "pairs": resolver.candidate_count,
                    "matches": len(resolver.snapshot().matches),
                    "peak_rss_kb": peak_kb,
                }
            )
        )
    finally:
        if directory is not None:
            shutil.rmtree(directory, ignore_errors=True)
    return 0


def run_rss_scenarios(
    record_count: int, threshold: float, seed: int, batch_size: int
) -> List[dict]:
    """Measure peak RSS of both backends, one subprocess per scenario."""
    rows = []
    for backend in ("memory", "sqlite"):
        result = subprocess.run(
            [
                sys.executable,
                __file__,
                "--_rss-child",
                backend,
                "--rss-size",
                str(record_count),
                "--threshold",
                str(threshold),
                "--seed",
                str(seed),
                "--batch-size",
                str(batch_size),
            ],
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            raise RuntimeError(
                f"RSS child for backend {backend!r} failed:\n{result.stderr}"
            )
        payload = json.loads(result.stdout.strip().splitlines()[-1])
        rows.append(
            {
                "backend": backend,
                "records": payload["records"],
                "pairs": payload["pairs"],
                "matches": payload["matches"],
                "peak_rss_mb": f"{payload['peak_rss_kb'] / 1024:.1f}",
                "_peak_kb": payload["peak_rss_kb"],
                "_matches": payload["matches"],
            }
        )
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small store and no gates (the <30 s CI run)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="restore-scenario store sizes (default: 2000 10000; smoke: 400)",
    )
    parser.add_argument(
        "--rss-size", type=int, default=None,
        help="record count of the peak-RSS stream (default: 50000; smoke: 2000)",
    )
    parser.add_argument("--threshold", type=float, default=0.35, help="likelihood threshold")
    parser.add_argument("--seed", type=int, default=7, help="dataset / crowd seed")
    parser.add_argument(
        "--batch-size", type=int, default=250,
        help="arrival batch size used to stream in the records",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required restore-over-cold-resolve speedup at the largest size",
    )
    parser.add_argument("--json", type=str, default=None,
                        help="write measured rows to this JSON file")
    parser.add_argument(
        "--_rss-child", type=str, default=None, choices=("memory", "sqlite"),
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)

    rss_size = args.rss_size if args.rss_size is not None else (
        2000 if args.smoke else 50_000
    )
    if getattr(args, "_rss_child"):
        return run_rss_child(
            getattr(args, "_rss_child"), rss_size, args.threshold, args.seed,
            args.batch_size,
        )

    sizes = args.sizes or ([400] if args.smoke else [2000, 10000])
    restore_rows = [
        run_restore_scenario(size, args.threshold, args.seed, args.batch_size)
        for size in sizes
    ]
    print(format_table(
        restore_rows,
        columns=[
            "records", "pairs", "cold_resolve_s", "restore_s", "store_mb",
            "speedup", "bit_identical",
        ],
        title=f"SQLite page-in restore vs cold re-resolve — "
              f"threshold {args.threshold}, batches of {args.batch_size}",
    ))

    rss_rows = run_rss_scenarios(rss_size, args.threshold, args.seed, args.batch_size)
    print(format_table(
        rss_rows,
        columns=["backend", "records", "pairs", "matches", "peak_rss_mb"],
        title=f"Peak RSS streaming {rss_size} records — memory vs sqlite backend",
    ))

    if args.json:
        payload = {
            "benchmark": "storage",
            "cpus": os.cpu_count(),
            "threshold": args.threshold,
            "batch_size": args.batch_size,
            "restore": [
                {key: value for key, value in row.items() if not key.startswith("_")}
                for row in restore_rows
            ],
            "rss": [
                {key: value for key, value in row.items() if not key.startswith("_")}
                for row in rss_rows
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    failures = 0
    for row in restore_rows:
        if not row["_identical"]:
            print(
                f"MISMATCH: restored session differs from the original at "
                f"{row['records']} records",
                file=sys.stderr,
            )
            failures += 1
    memory_row, sqlite_row = rss_rows
    if sqlite_row["_matches"] != memory_row["_matches"]:
        print(
            "MISMATCH: sqlite-backed stream resolved a different match count "
            f"({sqlite_row['_matches']} vs {memory_row['_matches']})",
            file=sys.stderr,
        )
        failures += 1
    if not args.smoke:
        largest = restore_rows[-1]
        if largest["_speedup"] < args.min_speedup:
            print(
                f"FAIL: restore speedup {largest['_speedup']:.1f}x at "
                f"{largest['records']} records is below the required "
                f"{args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            failures += 1
        if sqlite_row["_peak_kb"] >= memory_row["_peak_kb"]:
            print(
                f"FAIL: sqlite-backed peak RSS {sqlite_row['peak_rss_mb']} MB is "
                f"not below the in-memory baseline {memory_row['peak_rss_mb']} MB "
                f"at {rss_size} records",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        return 1
    print("restored sessions were bit-identical; gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
