"""Scaling benchmark for the similarity-join backends.

Times the ``naive``, ``prefix`` and ``vectorized`` join engines on
synthetically scaled Restaurant-style (self-join) and Product-style
(cross-source) stores, verifies that all backends return byte-identical
pair sets, and reports the speedups over the naive all-pairs scan.

Unlike the figure/table benchmarks this is a standalone script (not a
pytest-benchmark module) so CI can invoke it directly::

    PYTHONPATH=src python benchmarks/bench_simjoin_scaling.py            # full run
    PYTHONPATH=src python benchmarks/bench_simjoin_scaling.py --smoke    # <30 s CI gate

The full run asserts the acceptance criterion of the engine work: the
vectorized backend must be at least ``--min-speedup`` (default 5x) faster
than the naive scan at the largest store size.  Any pair-set mismatch or
missed speedup exits non-zero so perf regressions fail loudly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.datasets.product import ProductGenerator
from repro.datasets.restaurant import RestaurantGenerator
from repro.evaluation.reporting import format_table
from repro.records.pairs import PairSet
from repro.records.record import RecordStore
from repro.simjoin.backend import available_backends, get_backend

BACKENDS = ("naive", "prefix", "vectorized")


def build_workloads(sizes: List[int], threshold: float, seed: int):
    """Yield (label, store, cross_sources, threshold) tuples to benchmark."""
    for size in sizes:
        dataset = RestaurantGenerator(
            record_count=size, duplicate_pairs=max(1, size // 8), seed=seed
        ).generate()
        yield f"restaurant/{size}", dataset.store, None, threshold
    # One cross-source workload at the largest size exercises the bipartite
    # join path (the Product dataset shape: two sources, record linkage).
    largest = sizes[-1]
    product = ProductGenerator(
        shared_entities=max(1, largest // 2),
        extra_buy_duplicates=max(1, largest // 20),
        abt_only=max(1, largest // 20),
        buy_only=max(1, largest // 20),
        seed=seed,
    ).generate()
    yield f"product/{len(product.store)}", product.store, product.cross_sources, threshold


def time_backend(
    name: str,
    store: RecordStore,
    threshold: float,
    cross_sources: Optional[Tuple[str, str]],
    repeats: int,
) -> Tuple[float, PairSet]:
    backend = get_backend(name)
    best = float("inf")
    pairs: PairSet = PairSet()
    for _ in range(repeats):
        start = time.perf_counter()
        pairs = backend.join(store, threshold, cross_sources=cross_sources)
        best = min(best, time.perf_counter() - start)
    return best, pairs


def verify_identical(results: Dict[str, PairSet], label: str) -> List[str]:
    """Return human-readable mismatch descriptions (empty = all identical)."""
    problems: List[str] = []
    reference = results["naive"]
    reference_keys = reference.to_key_set()
    for name, pairs in results.items():
        if name == "naive":
            continue
        if pairs.to_key_set() != reference_keys:
            missing = len(reference_keys - pairs.to_key_set())
            extra = len(pairs.to_key_set() - reference_keys)
            problems.append(
                f"{label}: backend {name!r} pair set differs from naive "
                f"({missing} missing, {extra} extra)"
            )
            continue
        worst = 0.0
        for pair in reference:
            other = pairs.get(pair.id_a, pair.id_b)
            worst = max(worst, abs((other.likelihood or 0.0) - (pair.likelihood or 0.0)))
        if worst > 1e-9:
            problems.append(
                f"{label}: backend {name!r} likelihoods differ from naive by {worst:.3e}"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small store sizes and a single repeat (the <30 s CI gate)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="record counts to benchmark (default: 500 1000 2000; smoke: 150 300)",
    )
    parser.add_argument("--threshold", type=float, default=0.3, help="join threshold")
    parser.add_argument("--seed", type=int, default=7, help="dataset generation seed")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repetitions per backend (best is reported; default 2, smoke 1)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required vectorized-over-naive speedup at the largest size (full runs)",
    )
    parser.add_argument("--json", type=str, default=None,
                        help="write measured rows to this JSON file")
    args = parser.parse_args(argv)

    sizes = args.sizes or ([150, 300] if args.smoke else [500, 1000, 2000])
    repeats = args.repeats or (1 if args.smoke else 2)
    missing = [name for name in BACKENDS if name not in available_backends()]
    if missing:
        print(f"error: backends not registered: {missing}", file=sys.stderr)
        return 2

    rows = []
    problems: List[str] = []
    largest_speedup = None
    for label, store, cross_sources, threshold in build_workloads(
        sizes, args.threshold, args.seed
    ):
        results: Dict[str, PairSet] = {}
        timings: Dict[str, float] = {}
        for name in BACKENDS:
            timings[name], results[name] = time_backend(
                name, store, threshold, cross_sources, repeats
            )
        problems.extend(verify_identical(results, label))
        for name in BACKENDS:
            speedup = timings["naive"] / timings[name] if timings[name] > 0 else float("inf")
            rows.append({
                "workload": label,
                "backend": name,
                "pairs": len(results[name]),
                "seconds": f"{timings[name]:.4f}",
                "speedup": f"{speedup:.1f}x",
            })
            if name == "vectorized" and label == f"restaurant/{sizes[-1]}":
                largest_speedup = speedup

    print(format_table(
        rows,
        columns=["workload", "backend", "pairs", "seconds", "speedup"],
        title=f"Similarity-join backend scaling — threshold {args.threshold}, "
              f"best of {repeats} run(s)",
    ))

    if args.json:
        payload = {
            "benchmark": "simjoin_scaling",
            "cpus": os.cpu_count(),
            "threshold": args.threshold,
            "repeats": repeats,
            "rows": rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    if problems:
        for problem in problems:
            print(f"MISMATCH: {problem}", file=sys.stderr)
        return 1
    print("all backends returned identical pair sets")
    if not args.smoke and largest_speedup is not None and largest_speedup < args.min_speedup:
        print(
            f"FAIL: vectorized speedup {largest_speedup:.1f}x at {sizes[-1]} records "
            f"is below the required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
