"""Streaming incremental resolution vs full batch re-resolution.

Measures what the ``repro.streaming`` subsystem buys: when one batch of new
records arrives at an already-resolved store, an incremental
:class:`~repro.streaming.StreamingResolver` update (join only new-vs-old /
new-vs-new, regenerate HITs only for dirty components, reuse votes and
posteriors everywhere else) against re-running the whole
:class:`~repro.core.workflow.HybridWorkflow` from scratch on the grown
store.  Both paths use deterministic per-pair votes, so the benchmark also
asserts they produce the *same match set* — the speedup is not bought with
a different answer.

Standalone script (not a pytest-benchmark module) so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_streaming.py            # full run
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke    # <30 s CI gate

The full run asserts the acceptance criterion of the streaming work: the
incremental update must be at least ``--min-speedup`` (default 5x) faster
than the full re-resolve at the largest store size.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro import obs
from repro.core.config import WorkflowConfig
from repro.core.workflow import HybridWorkflow
from repro.datasets.restaurant import RestaurantGenerator
from repro.evaluation.reporting import format_table
from repro.streaming.session import StreamingResolver


def run_scenario(
    record_count: int,
    append_count: int,
    threshold: float,
    seed: int,
    setup_batch_size: int,
) -> dict:
    """Time one append scenario and return a report row."""
    dataset = RestaurantGenerator(
        record_count=record_count,
        duplicate_pairs=max(1, record_count // 8),
        seed=seed,
    ).generate()
    config = WorkflowConfig(
        likelihood_threshold=threshold,
        vote_mode="per-pair",
        aggregation="majority",
        seed=seed,
    )
    records = list(dataset.store)
    resident, appended = records[:-append_count], records[-append_count:]

    # Untimed setup: stream the resident records into an open session.
    resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
    resolver.add_truth(dataset.ground_truth)
    for start in range(0, len(resident), setup_batch_size):
        resolver.add_batch(resident[start : start + setup_batch_size])

    start_time = time.perf_counter()
    snapshot = resolver.add_batch(appended)
    incremental_seconds = time.perf_counter() - start_time

    start_time = time.perf_counter()
    full = HybridWorkflow(config).resolve(dataset)
    full_seconds = time.perf_counter() - start_time

    identical = set(snapshot.matches) == set(full.matches)
    speedup = full_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    delta = snapshot.delta
    return {
        "records": record_count,
        "appended": append_count,
        "dirty_pairs": delta.dirty_pairs,
        "total_pairs": snapshot.candidate_count,
        "incremental_s": f"{incremental_seconds:.4f}",
        "full_s": f"{full_seconds:.4f}",
        "speedup": f"{speedup:.1f}x",
        "matches_identical": identical,
        "_speedup": speedup,
        "_identical": identical,
    }


def collect_metrics_snapshot(
    record_count: int,
    append_count: int,
    threshold: float,
    seed: int,
    setup_batch_size: int,
) -> dict:
    """Re-run the smallest scenario with metrics on and return the snapshot.

    A *separate*, untimed pass: the timed measurements above always run with
    the registry disabled, so the instrumentation never taints the speedup
    numbers that this benchmark gates on.
    """
    obs.activate()
    try:
        dataset = RestaurantGenerator(
            record_count=record_count,
            duplicate_pairs=max(1, record_count // 8),
            seed=seed,
        ).generate()
        config = WorkflowConfig(
            likelihood_threshold=threshold,
            vote_mode="per-pair",
            aggregation="majority",
            metrics_enabled=True,
            seed=seed,
        )
        records = list(dataset.store)
        resident, appended = records[:-append_count], records[-append_count:]
        resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, len(resident), setup_batch_size):
            resolver.add_batch(resident[start : start + setup_batch_size])
        resolver.add_batch(appended)
        snapshot = obs.snapshot()
        return snapshot.to_dict() if snapshot is not None else {}
    finally:
        obs.deactivate()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small store and no speedup gate (the <30 s CI run)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="store sizes to benchmark (default: 1000 2000; smoke: 400)",
    )
    parser.add_argument(
        "--append", type=int, default=None,
        help="records in the appended batch (default: 100; smoke: 50)",
    )
    # 0.35 is the paper's Restaurant threshold; lower values produce one
    # giant near-duplicate component that stays dirty on every append.
    parser.add_argument("--threshold", type=float, default=0.35, help="likelihood threshold")
    parser.add_argument("--seed", type=int, default=7, help="dataset / crowd seed")
    parser.add_argument(
        "--setup-batch-size", type=int, default=250,
        help="arrival batch size used to stream in the resident records",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required incremental-over-full speedup at the largest size (full runs)",
    )
    parser.add_argument("--json", type=str, default=None,
                        help="write measured rows to this JSON file")
    args = parser.parse_args(argv)

    sizes = args.sizes or ([400] if args.smoke else [1000, 2000])
    append_count = args.append if args.append is not None else (50 if args.smoke else 100)
    if append_count < 1 or append_count >= min(sizes):
        print(
            f"error: --append must be in [1, smallest size); got {append_count}",
            file=sys.stderr,
        )
        return 2

    rows = [
        run_scenario(size, append_count, args.threshold, args.seed, args.setup_batch_size)
        for size in sizes
    ]
    print(format_table(
        rows,
        columns=[
            "records", "appended", "dirty_pairs", "total_pairs",
            "incremental_s", "full_s", "speedup", "matches_identical",
        ],
        title=f"Streaming incremental update vs full re-resolve — "
              f"threshold {args.threshold}, +{append_count} records",
    ))

    if args.json:
        payload = {
            "benchmark": "streaming",
            "cpus": os.cpu_count(),
            "threshold": args.threshold,
            "append": append_count,
            "rows": [
                {key: value for key, value in row.items() if not key.startswith("_")}
                for row in rows
            ],
            # Observability snapshot from an extra instrumented pass at the
            # smallest size — untimed, so the rows above are unaffected.
            "metrics": collect_metrics_snapshot(
                min(sizes), append_count, args.threshold, args.seed,
                args.setup_batch_size,
            ),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    failures = 0
    for row in rows:
        if not row["_identical"]:
            print(
                f"MISMATCH: streaming and batch match sets differ at "
                f"{row['records']} records",
                file=sys.stderr,
            )
            failures += 1
    if not args.smoke:
        largest = rows[-1]
        if largest["_speedup"] < args.min_speedup:
            print(
                f"FAIL: incremental speedup {largest['_speedup']:.1f}x at "
                f"{largest['records']} records is below the required "
                f"{args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        return 1
    print("streaming and batch resolution produced identical match sets")
    return 0


if __name__ == "__main__":
    sys.exit(main())
