"""Sharded parallel join vs serial vectorized join + columnar append pipeline.

Two measurements, each with a built-in correctness assertion:

1. **Sharded join scaling** — the ``parallel`` backend
   (:class:`repro.simjoin.parallel.ParallelSimJoin`, CSR row blocks split
   across a process pool) against the serial ``vectorized`` backend on the
   same store, asserting the pair sets and likelihoods are *bit-identical*.
   The full run gates the tentpole acceptance criterion: >= ``--min-speedup``
   (default 2x) with ``--workers`` (default 4) at the largest size.

2. **Streaming append pipeline** — the columnar chunked index maintenance
   (:mod:`repro.simjoin.columnar` + numpy chunk appends, what
   :class:`repro.streaming.incremental_join.IncrementalSimJoin` now does)
   against the legacy per-record pipeline (per-token dict ``setdefault``
   into Python lists, full list->numpy reconversion of the resident index
   on every append), asserting both maintain the same incidence matrix.
   The full run gates >= ``--min-index-speedup`` (default 1.5x).

Standalone script (not a pytest-benchmark module) so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_parallel_join.py            # full gates
    PYTHONPATH=src python benchmarks/bench_parallel_join.py --smoke    # <30 s CI run

The smoke run asserts all equivalences at small sizes but applies no
speedup gates — CI smoke runners may be single-core, where a process pool
cannot win.  The nightly job runs the full gates on a multi-core runner.
``--json`` writes the measured rows for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.restaurant import RestaurantGenerator
from repro.evaluation.reporting import format_table
from repro.records.tokenize import WhitespaceTokenizer, record_token_set
from repro.simjoin.columnar import extend_vocabulary_csr_arrays
from repro.simjoin.parallel import ParallelSimJoin
from repro.simjoin.vectorized import VectorizedSimJoin


def _token_sets(record_count: int, seed: int):
    dataset = RestaurantGenerator(
        record_count=record_count,
        duplicate_pairs=max(1, record_count // 8),
        seed=seed,
    ).generate()
    tokenizer = WhitespaceTokenizer()
    return dataset, [record_token_set(r, None, tokenizer) for r in dataset.store]


# ------------------------------------------------------------ sharded join
def run_join_scenario(
    record_count: int, threshold: float, workers: int, seed: int, block_size: int
) -> dict:
    """Time the serial and sharded joins on one store; assert bit-identical."""
    dataset, _ = _token_sets(record_count, seed)

    start = time.perf_counter()
    serial = VectorizedSimJoin(threshold, block_size=block_size).join(dataset.store)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = ParallelSimJoin(
        threshold, block_size=block_size, workers=workers
    ).join(dataset.store)
    parallel_seconds = time.perf_counter() - start

    identical = sorted((p.key, p.likelihood) for p in serial) == sorted(
        (p.key, p.likelihood) for p in parallel
    )
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    return {
        "records": record_count,
        "pairs": len(serial),
        "workers": workers,
        "serial_s": f"{serial_seconds:.3f}",
        "parallel_s": f"{parallel_seconds:.3f}",
        "speedup": f"{speedup:.2f}x",
        "bit_identical": identical,
        "_speedup": speedup,
        "_identical": identical,
    }


# --------------------------------------------------- append index pipeline
def _legacy_append_pipeline(token_sets, batch_size: int):
    """The pre-columnar index maintenance, verbatim: per-token setdefault
    into Python lists and a full list->numpy conversion of the resident
    index arrays on every append (the per-batch cost the columnar pipeline
    removes).  Returns the final (indices, indptr, vocabulary)."""
    vocabulary: Dict[str, int] = {}
    indices: List[int] = []
    indptr: List[int] = [0]
    for start in range(0, len(token_sets), batch_size):
        batch = token_sets[start : start + batch_size]
        new_indices: List[int] = []
        new_indptr: List[int] = [0]
        for tokens in batch:
            for token in tokens:
                new_indices.append(vocabulary.setdefault(token, len(vocabulary)))
            new_indptr.append(len(new_indices))
        # What every batch join pays: the resident index as numpy arrays.
        np.asarray(indices, dtype=np.int64)
        np.asarray(indptr, dtype=np.int64)
        np.asarray(new_indices, dtype=np.int64)
        np.asarray(new_indptr, dtype=np.int64)
        indices.extend(new_indices)
        indptr.extend(len(indices) - len(new_indices) + p for p in new_indptr[1:])
    return np.asarray(indices, dtype=np.int64), np.asarray(indptr, dtype=np.int64), vocabulary


def _columnar_append_pipeline(token_sets, batch_size: int):
    """The columnar chunked maintenance IncrementalSimJoin now performs."""
    vocabulary: Dict[str, int] = {}
    chunks: List[np.ndarray] = []
    indptr: List[int] = [0]
    for start in range(0, len(token_sets), batch_size):
        batch = token_sets[start : start + batch_size]
        batch_indices, batch_indptr = extend_vocabulary_csr_arrays(batch, vocabulary)
        # What every batch join pays: the resident index as numpy arrays.
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        np.asarray(indptr, dtype=np.int64)
        offset = indptr[-1]
        if len(batch_indices):
            chunks.append(batch_indices)
        indptr.extend((batch_indptr[1:] + offset).tolist())
    merged = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    return merged, np.asarray(indptr, dtype=np.int64), vocabulary


def _same_incidence(legacy, columnar) -> bool:
    """Row-wise token equality of the two indexes (column order may differ)."""
    legacy_indices, legacy_indptr, legacy_vocab = legacy
    columnar_indices, columnar_indptr, columnar_vocab = columnar
    if legacy_indptr.tolist() != columnar_indptr.tolist():
        return False
    legacy_tokens = np.array(sorted(legacy_vocab, key=legacy_vocab.__getitem__))
    columnar_tokens = np.array(sorted(columnar_vocab, key=columnar_vocab.__getitem__))
    for row in range(len(legacy_indptr) - 1):
        start, stop = legacy_indptr[row], legacy_indptr[row + 1]
        if set(legacy_tokens[legacy_indices[start:stop]]) != set(
            columnar_tokens[columnar_indices[start:stop]]
        ):
            return False
    return True


def run_append_scenario(record_count: int, batch_size: int, seed: int) -> dict:
    """Time both streaming index pipelines end to end; assert equivalence."""
    _, token_sets = _token_sets(record_count, seed)

    start = time.perf_counter()
    legacy = _legacy_append_pipeline(token_sets, batch_size)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    columnar = _columnar_append_pipeline(token_sets, batch_size)
    columnar_seconds = time.perf_counter() - start

    identical = _same_incidence(legacy, columnar)
    speedup = legacy_seconds / columnar_seconds if columnar_seconds > 0 else float("inf")
    return {
        "records": record_count,
        "batch": batch_size,
        "vocab": len(legacy[2]),
        "per_record_s": f"{legacy_seconds:.3f}",
        "columnar_s": f"{columnar_seconds:.3f}",
        "speedup": f"{speedup:.2f}x",
        "same_index": identical,
        "_speedup": speedup,
        "_identical": identical,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes, equivalence asserts only, no speedup gates (<30 s)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="store sizes to benchmark (default: 2000 10000; smoke: 600)",
    )
    parser.add_argument("--threshold", type=float, default=0.3, help="likelihood threshold")
    parser.add_argument("--workers", type=int, default=4, help="worker processes for the sharded join")
    parser.add_argument("--batch-size", type=int, default=64, help="append batch size for the pipeline benchmark")
    parser.add_argument(
        "--block-size", type=int, default=None,
        help="matmul row-block size (default 1024; smoke: 128 so the pool "
             "path is genuinely exercised at small store sizes)",
    )
    parser.add_argument("--seed", type=int, default=7, help="dataset seed")
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required parallel-over-serial speedup at the largest size (full runs)",
    )
    parser.add_argument(
        "--min-index-speedup", type=float, default=1.5,
        help="required columnar-over-per-record append speedup at the largest size (full runs)",
    )
    parser.add_argument("--json", type=str, default=None, help="write measured rows to this JSON file")
    args = parser.parse_args(argv)

    sizes = args.sizes or ([600] if args.smoke else [2000, 10000])
    # The smoke stores are smaller than one default row block, which would
    # degenerate the sharded join to its serial path; a small block size
    # keeps the worker processes (init, pickling, merge order) under test.
    block_size = args.block_size or (128 if args.smoke else 1024)

    join_rows = [
        run_join_scenario(size, args.threshold, args.workers, args.seed, block_size)
        for size in sizes
    ]
    print(format_table(
        join_rows,
        columns=["records", "pairs", "workers", "serial_s", "parallel_s", "speedup", "bit_identical"],
        title=f"Sharded parallel join vs serial vectorized — threshold {args.threshold}",
    ))

    append_rows = [
        run_append_scenario(size, args.batch_size, args.seed) for size in sizes
    ]
    print(format_table(
        append_rows,
        columns=["records", "batch", "vocab", "per_record_s", "columnar_s", "speedup", "same_index"],
        title=f"Streaming append index pipeline — columnar vs per-record, batches of {args.batch_size}",
    ))

    if args.json:
        payload = {
            "benchmark": "parallel_join",
            "cpus": os.cpu_count(),
            "sizes": sizes,
            "workers": args.workers,
            "threshold": args.threshold,
            "batch_size": args.batch_size,
            "join": [{k: v for k, v in row.items() if not k.startswith("_")} for row in join_rows],
            "append": [{k: v for k, v in row.items() if not k.startswith("_")} for row in append_rows],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    failures = 0
    for row in join_rows:
        if not row["_identical"]:
            print(
                f"MISMATCH: parallel and serial pair sets differ at {row['records']} records",
                file=sys.stderr,
            )
            failures += 1
    for row in append_rows:
        if not row["_identical"]:
            print(
                f"MISMATCH: columnar and per-record indexes differ at {row['records']} records",
                file=sys.stderr,
            )
            failures += 1
    if not args.smoke:
        largest_join = join_rows[-1]
        if largest_join["_speedup"] < args.min_speedup:
            print(
                f"FAIL: parallel speedup {largest_join['_speedup']:.2f}x at "
                f"{largest_join['records']} records with {args.workers} workers "
                f"is below the required {args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            failures += 1
        largest_append = append_rows[-1]
        if largest_append["_speedup"] < args.min_index_speedup:
            print(
                f"FAIL: columnar append speedup {largest_append['_speedup']:.2f}x at "
                f"{largest_append['records']} records is below the required "
                f"{args.min_index_speedup:.1f}x",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        return 1
    print("parallel join and columnar pipeline are bit-identical to their serial references")
    return 0


if __name__ == "__main__":
    sys.exit(main())
