"""Fault-injection equivalence gate: async crowd under faults == sync.

The robustness headline of the async crowd layer
(:mod:`repro.crowd.async_platform`): a seeded :class:`~repro.crowd.faults.
FaultPlan` that drops, duplicates, reorders and churns vote deliveries must
not change *what* the session concludes — only when the votes arrive.  The
gate streams the Abt-Buy mini corpus twice, synchronously and
asynchronously under a hostile fault schedule, and fails unless:

* the final match sets (and hence F1) are identical,
* the fault machinery actually fired (nonzero ``crowd_retries_total`` and
  ``crowd_timeouts_total`` in the exported metrics — a fault plan that
  never triggers is not a robustness test), and
* the Prometheus export written along the way passes the strict
  ``repro.obs.export`` validator.

Standalone script (not a pytest-benchmark module) so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_fault_injection.py            # full gates
    PYTHONPATH=src python benchmarks/bench_fault_injection.py --smoke    # <30 s CI run

The async run uses majority aggregation with component scope — one of the
equivalence classes (majority/any scope, Dawid-Skene/global scope) for
which fault-schedule independence holds exactly; see ``docs/crowd.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.core.config import WorkflowConfig
from repro.etl.registry import load_corpus
from repro.evaluation.metrics import f1_score
from repro.evaluation.reporting import format_table
from repro.obs.export import to_prometheus, validate_prometheus_text
from repro.streaming import StreamingResolver

#: A deliberately hostile schedule: ~40% of attempts abandoned, a third
#: duplicated, half jittered out of order, worker churn and publish bursts.
HOSTILE_PLAN = dict(
    seed=13,
    delay_ticks_min=0,
    delay_ticks_max=5,
    drop_probability=0.4,
    duplicate_probability=0.3,
    duplicate_delay_ticks=2,
    reorder_probability=0.5,
    reorder_window_ticks=4,
    churn_probability=0.2,
    burst_every=2,
    burst_backlog_ticks=4,
)


def run_session(dataset, records, threshold, seed, batch_size, crowd_mode,
                fault_plan=None):
    """Stream the records through one session; return (snapshot, seconds)."""
    config = WorkflowConfig(
        likelihood_threshold=threshold,
        vote_mode="per-pair",
        aggregation="majority",
        stream_batch_size=batch_size,
        crowd_mode=crowd_mode,
        **(
            dict(vote_timeout=3, crowd_max_retries=2, fault_plan=fault_plan)
            if crowd_mode == "async"
            else {}
        ),
        seed=seed,
    )
    start_time = time.perf_counter()
    resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
    resolver.add_truth(dataset.ground_truth)
    for start in range(0, len(records), batch_size):
        resolver.add_batch(records[start : start + batch_size])
    snapshot = resolver.flush()
    return snapshot, time.perf_counter() - start_time


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="higher threshold / fewer pairs (the <30 s CI run)",
    )
    parser.add_argument("--threshold", type=float, default=None,
                        help="likelihood threshold (default: 0.1; smoke: 0.2)")
    parser.add_argument("--seed", type=int, default=7, help="dataset / crowd seed")
    parser.add_argument("--batch-size", type=int, default=100,
                        help="arrival batch size used to stream in the records")
    parser.add_argument("--metrics-out", type=str, default=None,
                        help="write the async run's Prometheus export here "
                             "(default: fault-metrics.prom in the CWD)")
    parser.add_argument("--json", type=str, default=None,
                        help="write measured rows to this JSON file")
    args = parser.parse_args(argv)

    threshold = args.threshold if args.threshold is not None else (
        0.2 if args.smoke else 0.1
    )
    metrics_out = args.metrics_out or "fault-metrics.prom"
    dataset = load_corpus("abt-buy")
    records = list(dataset.store)

    sync_snap, sync_seconds = run_session(
        dataset, records, threshold, args.seed, args.batch_size, "sync"
    )

    # Metrics cover only the async run, so the counters the gate asserts on
    # are unambiguously the fault machinery's.
    obs.activate()
    async_snap, async_seconds = run_session(
        dataset, records, threshold, args.seed, args.batch_size, "async",
        fault_plan=HOSTILE_PLAN,
    )
    metrics = obs.snapshot()
    obs.deactivate()
    retries = metrics.counter_total("crowd_retries_total")
    timeouts = metrics.counter_total("crowd_timeouts_total")
    reissued = metrics.counter_total("crowd_reissued_total")
    duplicates = metrics.counter_total("crowd_duplicates_dropped_total")

    export_text = to_prometheus(metrics)
    Path(metrics_out).write_text(export_text, encoding="utf-8")
    export_errors = validate_prometheus_text(export_text)

    rows = [
        {
            "mode": "sync",
            "matches": len(sync_snap.matches),
            "f1": f"{f1_score(sync_snap.matches, dataset.ground_truth):.4f}",
            "hits": sync_snap.hit_count,
            "cost": f"${sync_snap.cost:.2f}",
            "seconds": f"{sync_seconds:.2f}",
            "retries": 0,
            "timeouts": 0,
        },
        {
            "mode": "async+faults",
            "matches": len(async_snap.matches),
            "f1": f"{f1_score(async_snap.matches, dataset.ground_truth):.4f}",
            "hits": async_snap.hit_count,
            "cost": f"${async_snap.cost:.2f}",
            "seconds": f"{async_seconds:.2f}",
            "retries": int(retries),
            "timeouts": int(timeouts),
        },
    ]
    print(format_table(
        rows,
        columns=["mode", "matches", "f1", "hits", "cost", "seconds",
                 "retries", "timeouts"],
        title=f"Fault injection on {dataset.name} — threshold {threshold}, "
              f"drop {HOSTILE_PLAN['drop_probability']}, "
              f"dup {HOSTILE_PLAN['duplicate_probability']}, "
              f"reorder {HOSTILE_PLAN['reorder_probability']}",
    ))
    print(f"async robustness: {int(timeouts)} timeouts, {int(retries)} retries, "
          f"{int(reissued)} reissued, {int(duplicates)} duplicates dropped")
    print(f"metrics exported to {metrics_out}")

    if args.json:
        payload = {
            "benchmark": "fault_injection",
            "cpus": os.cpu_count(),
            "threshold": threshold,
            "batch_size": args.batch_size,
            "fault_plan": HOSTILE_PLAN,
            "rows": rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    failures = 0
    if async_snap.matches != sync_snap.matches:
        print("FAIL: async match set differs from the sync baseline", file=sys.stderr)
        failures += 1
    if async_snap.posteriors != sync_snap.posteriors:
        print("FAIL: async posteriors differ from the sync baseline", file=sys.stderr)
        failures += 1
    if async_snap.hit_count != sync_snap.hit_count:
        print(
            f"FAIL: async issued {async_snap.hit_count} HITs, "
            f"sync {sync_snap.hit_count}",
            file=sys.stderr,
        )
        failures += 1
    if retries <= 0 or timeouts <= 0:
        print(
            f"FAIL: fault machinery never fired (retries={int(retries)}, "
            f"timeouts={int(timeouts)}) — the plan is not exercising anything",
            file=sys.stderr,
        )
        failures += 1
    for error in export_errors:
        print(f"FAIL: invalid Prometheus export: {error}", file=sys.stderr)
        failures += 1
    if failures:
        return 1
    print("async final state is identical to the synchronous baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
