"""Checkpoint save+restore vs cold re-resolution of a streaming session.

Measures what the durability layer (:mod:`repro.streaming.persistence`)
buys: when a long-lived resolution session dies, restoring it from a
compacted snapshot must be dramatically cheaper than re-running the whole
session from scratch — the crowd work is already paid for, so recovery
should cost I/O, not resolution.  The benchmark builds a streaming session
over a restaurant store (that build *is* the cold-resolve cost), snapshots
it, restores it in a fresh resolver, and asserts the restored session is
**bit-identical** (state digest, match set, posteriors) before reporting
the speedup.

Standalone script (not a pytest-benchmark module) so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py            # full gates
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --smoke    # <30 s CI run

The full run gates the acceptance criterion: snapshot+restore of a
10,000-record session must beat the cold re-resolve by at least
``--min-speedup`` (default 5x).  ``--json`` writes the measured rows for
artifact upload, like the other benchmark gates.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.core.config import WorkflowConfig
from repro.datasets.restaurant import RestaurantGenerator
from repro.evaluation.reporting import format_table
from repro.streaming import StreamingResolver


def run_scenario(
    record_count: int,
    threshold: float,
    seed: int,
    batch_size: int,
) -> dict:
    """Time one save/restore scenario and return a report row."""
    dataset = RestaurantGenerator(
        record_count=record_count,
        duplicate_pairs=max(1, record_count // 8),
        seed=seed,
    ).generate()
    config = WorkflowConfig(
        likelihood_threshold=threshold,
        vote_mode="per-pair",
        aggregation="majority",
        seed=seed,
    )
    records = list(dataset.store)

    # The cold cost: resolving the whole session from scratch (the work a
    # crash would force without a checkpoint).
    start_time = time.perf_counter()
    resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
    resolver.add_truth(dataset.ground_truth)
    for start in range(0, len(records), batch_size):
        snapshot = resolver.add_batch(records[start : start + batch_size])
    cold_seconds = time.perf_counter() - start_time

    directory = Path(tempfile.mkdtemp(prefix="bench-checkpoint-"))
    try:
        start_time = time.perf_counter()
        target = resolver.save(directory)
        save_seconds = time.perf_counter() - start_time

        start_time = time.perf_counter()
        restored = StreamingResolver.restore(directory, resume_journal=False)
        restore_seconds = time.perf_counter() - start_time
        snapshot_bytes = target.stat().st_size
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    identical = (
        restored.state_digest() == resolver.state_digest()
        and restored.snapshot().matches == snapshot.matches
        and restored.snapshot().posteriors == snapshot.posteriors
    )
    round_trip = save_seconds + restore_seconds
    speedup = cold_seconds / round_trip if round_trip > 0 else float("inf")
    return {
        "records": record_count,
        "pairs": resolver.candidate_count,
        "cold_resolve_s": f"{cold_seconds:.3f}",
        "save_s": f"{save_seconds:.4f}",
        "restore_s": f"{restore_seconds:.4f}",
        "snapshot_mb": f"{snapshot_bytes / 1e6:.2f}",
        "speedup": f"{speedup:.1f}x",
        "bit_identical": identical,
        "_speedup": speedup,
        "_identical": identical,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small store and no speedup gate (the <30 s CI run)",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="store sizes to benchmark (default: 2000 10000; smoke: 400)",
    )
    parser.add_argument("--threshold", type=float, default=0.35, help="likelihood threshold")
    parser.add_argument("--seed", type=int, default=7, help="dataset / crowd seed")
    parser.add_argument(
        "--batch-size", type=int, default=250,
        help="arrival batch size used to stream in the records",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required save+restore speedup over cold resolve at the largest size",
    )
    parser.add_argument("--json", type=str, default=None,
                        help="write measured rows to this JSON file")
    args = parser.parse_args(argv)

    sizes = args.sizes or ([400] if args.smoke else [2000, 10000])
    rows = [
        run_scenario(size, args.threshold, args.seed, args.batch_size)
        for size in sizes
    ]
    print(format_table(
        rows,
        columns=[
            "records", "pairs", "cold_resolve_s", "save_s", "restore_s",
            "snapshot_mb", "speedup", "bit_identical",
        ],
        title=f"Checkpoint save+restore vs cold re-resolve — "
              f"threshold {args.threshold}, batches of {args.batch_size}",
    ))

    if args.json:
        payload = {
            "benchmark": "checkpoint",
            "cpus": os.cpu_count(),
            "threshold": args.threshold,
            "batch_size": args.batch_size,
            "rows": [
                {key: value for key, value in row.items() if not key.startswith("_")}
                for row in rows
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    failures = 0
    for row in rows:
        if not row["_identical"]:
            print(
                f"MISMATCH: restored session differs from the original at "
                f"{row['records']} records",
                file=sys.stderr,
            )
            failures += 1
    if not args.smoke:
        largest = rows[-1]
        if largest["_speedup"] < args.min_speedup:
            print(
                f"FAIL: save+restore speedup {largest['_speedup']:.1f}x at "
                f"{largest['records']} records is below the required "
                f"{args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        return 1
    print("restored sessions were bit-identical to the originals")
    return 0


if __name__ == "__main__":
    sys.exit(main())
