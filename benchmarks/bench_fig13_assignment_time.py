"""Figure 13: median completion time per assignment, pair vs cluster HITs.

On the Product dataset (few duplicates) a cluster-based assignment takes a
bit less time than a pair-based one; on Product+Dup (many duplicates) the
difference is much larger because duplicates shrink the number of
comparisons a cluster-based HIT needs (Section 6).
"""

from _pair_vs_cluster import run_comparison

from repro.evaluation.reporting import format_table

COLUMNS = ["config", "hits", "assignments", "median_sec"]


def test_fig13a_product(benchmark, product_dataset, report):
    rows = benchmark.pedantic(run_comparison, args=(product_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=COLUMNS,
        title="Figure 13(a) — Product: median completion time per assignment (seconds)",
    ))


def test_fig13b_product_dup(benchmark, product_dup_dataset, report):
    rows = benchmark.pedantic(run_comparison, args=(product_dup_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows, columns=COLUMNS,
        title="Figure 13(b) — Product+Dup: median completion time per assignment (seconds)",
    ))


if __name__ == "__main__":  # standalone: emit rows + metrics snapshot as JSON
    import sys

    from _pair_vs_cluster import standalone_main

    sys.exit(standalone_main("13", COLUMNS))
