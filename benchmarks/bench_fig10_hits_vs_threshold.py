"""Figure 10: number of cluster-based HITs vs likelihood threshold (k = 10).

Compares Random, DFS-based, BFS-based, the k-clique approximation and the
two-tiered approach on the Restaurant and Product datasets, exactly the five
series plotted in Figure 10 of the paper.
"""

from repro.evaluation.reporting import format_table
from repro.hit.generator import get_cluster_generator
from repro.simjoin.likelihood import SimJoinLikelihood

ALGORITHMS = ["random", "dfs", "bfs", "approximation", "two-tiered"]
THRESHOLDS = (0.5, 0.4, 0.3, 0.2, 0.1)
CLUSTER_SIZE = 10


def _hit_counts(dataset):
    estimator = SimJoinLikelihood()
    rows = []
    for threshold in THRESHOLDS:
        pairs = estimator.estimate(
            dataset.store, min_likelihood=threshold, cross_sources=dataset.cross_sources
        )
        row = {"threshold": threshold, "pairs": len(pairs)}
        for name in ALGORITHMS:
            batch = get_cluster_generator(name, cluster_size=CLUSTER_SIZE).generate(pairs)
            row[name] = batch.hit_count
        rows.append(row)
    return rows


def test_fig10a_restaurant(benchmark, restaurant_dataset, report):
    rows = benchmark.pedantic(_hit_counts, args=(restaurant_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows,
        columns=["threshold", "pairs"] + ALGORITHMS,
        title="Figure 10(a) — Restaurant: cluster-based HITs vs likelihood threshold (k=10)",
    ))


def test_fig10b_product(benchmark, product_dataset, report):
    rows = benchmark.pedantic(_hit_counts, args=(product_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows,
        columns=["threshold", "pairs"] + ALGORITHMS,
        title="Figure 10(b) — Product: cluster-based HITs vs likelihood threshold (k=10)",
    ))
