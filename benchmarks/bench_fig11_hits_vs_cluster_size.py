"""Figure 11: number of cluster-based HITs vs cluster-size threshold.

Same five algorithms as Figure 10, with the likelihood threshold fixed at
0.1 and the cluster-size threshold varied from 5 to 20.
"""

from repro.evaluation.reporting import format_table
from repro.hit.generator import get_cluster_generator
from repro.simjoin.likelihood import SimJoinLikelihood

ALGORITHMS = ["random", "dfs", "bfs", "approximation", "two-tiered"]
CLUSTER_SIZES = (5, 10, 15, 20)
LIKELIHOOD_THRESHOLD = 0.1


def _hit_counts(dataset):
    pairs = SimJoinLikelihood().estimate(
        dataset.store,
        min_likelihood=LIKELIHOOD_THRESHOLD,
        cross_sources=dataset.cross_sources,
    )
    rows = []
    for cluster_size in CLUSTER_SIZES:
        row = {"cluster_size": cluster_size, "pairs": len(pairs)}
        for name in ALGORITHMS:
            batch = get_cluster_generator(name, cluster_size=cluster_size).generate(pairs)
            row[name] = batch.hit_count
        rows.append(row)
    return rows


def test_fig11a_restaurant(benchmark, restaurant_dataset, report):
    rows = benchmark.pedantic(_hit_counts, args=(restaurant_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows,
        columns=["cluster_size", "pairs"] + ALGORITHMS,
        title="Figure 11(a) — Restaurant: cluster-based HITs vs cluster size (threshold=0.1)",
    ))


def test_fig11b_product(benchmark, product_dataset, report):
    rows = benchmark.pedantic(_hit_counts, args=(product_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows,
        columns=["cluster_size", "pairs"] + ALGORITHMS,
        title="Figure 11(b) — Product: cluster-based HITs vs cluster size (threshold=0.1)",
    ))
