"""Table 2: likelihood-threshold selection on Restaurant and Product.

For each likelihood threshold the benchmark reports the number of surviving
candidate pairs, how many of them are true matches, and the recall ceiling —
the same three columns as Table 2(a)/(b) in the paper.
"""

from repro.evaluation.reporting import format_table
from repro.evaluation.threshold_table import threshold_table

THRESHOLDS = (0.5, 0.4, 0.3, 0.2, 0.1)


def _rows(dataset):
    return [row.as_dict() for row in threshold_table(dataset, thresholds=THRESHOLDS)]


def test_table2a_restaurant(benchmark, restaurant_dataset, report):
    rows = benchmark.pedantic(_rows, args=(restaurant_dataset,), rounds=1, iterations=1)
    report(format_table(
        rows,
        columns=["threshold", "total_pairs", "matching_pairs", "recall"],
        title="Table 2(a) — Restaurant: likelihood-threshold selection",
    ))


def test_table2b_product(benchmark, product_dataset_full, report):
    rows = benchmark.pedantic(_rows, args=(product_dataset_full,), rounds=1, iterations=1)
    report(format_table(
        rows,
        columns=["threshold", "total_pairs", "matching_pairs", "recall"],
        title="Table 2(b) — Product: likelihood-threshold selection",
    ))
