"""Cross-dataset regression matrix sweep with tolerance-checked baselines.

Runs dataset × join backend × execution mode cells (see
:mod:`repro.evaluation.matrix`) on the bundled mini corpora and compares
every cell against the committed ``BENCH_matrix.json``.  A cell outside its
tolerance fails the run with a per-cell diff message naming the metric, the
observed and baseline values and the tolerance — so a quality regression
points at the exact dataset/backend/mode combination that moved.

Standalone script (not a pytest-benchmark module) so CI can gate on it::

    PYTHONPATH=src python benchmarks/bench_matrix.py --smoke     # fast cells
    PYTHONPATH=src python benchmarks/bench_matrix.py             # full sweep
    PYTHONPATH=src python benchmarks/bench_matrix.py --refresh   # rewrite baseline

``--refresh`` rewrites the committed baseline from the current run — the
deliberate act required after a change that legitimately moves cell
metrics (new dataset, retuned threshold, crowd-model change).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.evaluation import matrix as mx
from repro.evaluation.reporting import format_table
from repro.simjoin.backend import available_backends
from repro.simjoin.vectorized import HAVE_SCIPY

#: The fast subset mirrored by the tier-1 tests: all datasets and modes,
#: but only the serial fast backends.
SMOKE_BACKENDS = ("prefix",) + (("vectorized",) if HAVE_SCIPY else ())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast cells only (prefix/vectorized backends)")
    parser.add_argument("--datasets", nargs="+", default=None,
                        choices=mx.matrix_datasets(),
                        help="restrict to these datasets")
    parser.add_argument("--backends", nargs="+", default=None,
                        choices=available_backends(),
                        help="restrict to these join backends")
    parser.add_argument("--modes", nargs="+", default=None,
                        choices=mx.MATRIX_MODES,
                        help="restrict to these execution modes")
    parser.add_argument("--refresh", action="store_true",
                        help="rewrite the committed baseline from this run "
                             "instead of comparing against it")
    parser.add_argument("--baseline", type=str, default=None,
                        help=f"baseline file (default: {mx.baseline_path()})")
    parser.add_argument("--json", type=str, default=None,
                        help="also write the measured rows to this JSON file")
    args = parser.parse_args(argv)

    backends = args.backends or (SMOKE_BACKENDS if args.smoke else None)
    started = time.perf_counter()
    rows = mx.run_matrix(datasets=args.datasets, backends=backends, modes=args.modes)
    elapsed = time.perf_counter() - started

    display = [
        {key: value for key, value in row.items() if not key.startswith("_")}
        for row in rows
    ]
    print(format_table(
        display,
        columns=["dataset", "backend", "mode", "candidates", "hits",
                 "matches", "precision", "recall", "f1"],
        title=f"Cross-dataset regression matrix — {len(rows)} cells "
              f"in {elapsed:.1f}s",
    ))

    # Streaming modes must reproduce the batch match set whenever both ran.
    failures = 0
    by_cell = {(r["dataset"], r["backend"], r["mode"]): r for r in rows}
    for (dataset, backend, mode), row in by_cell.items():
        batch = by_cell.get((dataset, backend, "batch"))
        if mode == "batch" or batch is None:
            continue
        if row["_matches"] != batch["_matches"]:
            print(f"MISMATCH: {dataset}|{backend}|{mode} match set differs "
                  f"from batch", file=sys.stderr)
            failures += 1

    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"benchmark": "matrix", "rows": display}, handle, indent=2)
        print(f"wrote {args.json}")

    baseline_file = args.baseline or mx.baseline_path()
    if args.refresh:
        document = mx.baseline_document(rows)
        with open(baseline_file, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline refreshed: {baseline_file} ({len(document['cells'])} cells)")
        return 1 if failures else 0

    try:
        baseline = mx.load_baseline(baseline_file)
    except FileNotFoundError:
        print(f"error: no baseline at {baseline_file}; run with --refresh first",
              file=sys.stderr)
        return 2
    violations = mx.compare_rows(rows, baseline)
    for violation in violations:
        print(f"REGRESSION: {violation}", file=sys.stderr)
    failures += len(violations)
    if failures:
        return 1
    print(f"all {len(rows)} cells within tolerance of {baseline_file}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
