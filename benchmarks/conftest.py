"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series (bypassing pytest's output capture so the report
is visible in a plain ``pytest benchmarks/ --benchmark-only`` run).

The Product-derived workloads are scaled down by default so the whole
harness finishes in a few minutes on a laptop; set ``REPRO_BENCH_SCALE=1.0``
to run them at the paper's full size.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets.product import load_product
from repro.datasets.product_dup import ProductDupGenerator
from repro.datasets.restaurant import load_restaurant


def bench_scale() -> float:
    """Scale factor for the Product-derived datasets (1.0 = paper size)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


@pytest.fixture(scope="session")
def restaurant_dataset():
    """The Restaurant dataset at full paper size (858 records, 106 duplicates)."""
    return load_restaurant()


@pytest.fixture(scope="session")
def product_dataset():
    """The two-source Product dataset (scaled by REPRO_BENCH_SCALE)."""
    return load_product(scale=bench_scale())


@pytest.fixture(scope="session")
def product_dataset_full():
    """The Product dataset at full paper size (used by the Table-2 benchmark)."""
    return load_product(scale=1.0)


@pytest.fixture(scope="session")
def product_dup_dataset():
    """The Product+Dup dataset of Section 7.4 (built on the scaled Product data)."""
    return ProductDupGenerator(
        base_records=100, max_duplicates=9, seed=11, product_scale=bench_scale()
    ).generate()


@pytest.fixture()
def report(capsys):
    """Print a benchmark report even when pytest captures output."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report
